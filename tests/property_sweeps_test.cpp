// Parameterized property sweeps across the whole policy/config space:
// invariants that must hold for every policy, every trace class, and broad
// ranges of the learners' hyperparameters.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "gen/zipf.hpp"
#include "hazard/hro.hpp"
#include "ml/gbdt.hpp"
#include "opt/bounds.hpp"
#include "sim/engine.hpp"
#include "trace/trace_stats.hpp"
#include "util/rng.hpp"

namespace lhr {
namespace {

// ------------------------------------------- capacity-shrink robustness

class PolicyShrink : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyShrink, SurvivesCapacityShrinkMidTrace) {
  auto policy = core::make_policy(GetParam(), 1ULL << 30);
  const auto t = gen::make_trace(gen::TraceClass::kWiki, 6'000, 77);
  for (std::size_t i = 0; i < t.size(); ++i) {
    policy->access(t[i]);
    if (i == t.size() / 2) {
      policy->set_capacity(policy->capacity_bytes() / 4);
    }
    if (i > t.size() / 2 + 64) {
      // A few requests after the shrink, the invariant must be restored and
      // hold for good.
      ASSERT_LE(policy->used_bytes(), policy->capacity_bytes()) << GetParam();
    }
  }
}

TEST_P(PolicyShrink, ZeroCapacityNeverHits) {
  auto policy = core::make_policy(GetParam(), 1);  // 1 byte: nothing fits
  const auto t = gen::make_trace(gen::TraceClass::kCdnC, 2'000, 78);
  for (const auto& r : t) {
    ASSERT_FALSE(policy->access(r)) << GetParam();
  }
  EXPECT_EQ(policy->used_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyShrink,
                         ::testing::ValuesIn(core::all_policy_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------- HRO capacity sweep

class HroCapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(HroCapacitySweep, HitRatioGrowsWithCapacity) {
  // HRO at capacity C vs 4C: more room can only raise the knapsack bound
  // (up to estimation noise).
  gen::ZipfSampler zipf(2'000, 0.9);
  util::Xoshiro256 rng(81);
  trace::Trace t;
  for (int i = 0; i < 40'000; ++i) {
    t.push_back({i * 0.1, zipf.sample(rng), 1'000});
  }
  const auto base = static_cast<std::uint64_t>(GetParam());
  hazard::Hro small(hazard::HroConfig{.capacity_bytes = base});
  hazard::Hro large(hazard::HroConfig{.capacity_bytes = base * 4});
  for (const auto& r : t) {
    small.classify(r);
    large.classify(r);
  }
  EXPECT_GE(large.hit_ratio(), small.hit_ratio() - 0.01) << "base " << base;
}

INSTANTIATE_TEST_SUITE_P(Capacities, HroCapacitySweep,
                         ::testing::Values(20'000.0, 100'000.0, 400'000.0));

// -------------------------------------------------- GBDT config sweep

struct GbdtSweepCase {
  std::size_t trees;
  std::size_t depth;
  std::size_t bins;
};

class GbdtSweep : public ::testing::TestWithParam<GbdtSweepCase> {};

TEST_P(GbdtSweep, LearnsStepFunctionAcrossConfigs) {
  const auto& param = GetParam();
  util::Xoshiro256 rng(83);
  ml::Dataset d;
  d.n_features = 1;
  std::vector<float> y;
  for (int i = 0; i < 3'000; ++i) {
    const float x = static_cast<float>(rng.next_double() * 10.0);
    d.values.push_back(x);
    y.push_back(x < 5.0f ? 0.0f : 1.0f);
  }
  ml::GbdtConfig cfg;
  cfg.num_trees = param.trees;
  cfg.max_depth = param.depth;
  cfg.max_bins = param.bins;
  cfg.learning_rate = 0.4;
  ml::Gbdt model;
  model.fit(d, y, cfg);
  EXPECT_LT(model.predict(std::vector<float>{1.0f}), 0.3);
  EXPECT_GT(model.predict(std::vector<float>{9.0f}), 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GbdtSweep,
    ::testing::Values(GbdtSweepCase{5, 3, 16}, GbdtSweepCase{10, 6, 64},
                      GbdtSweepCase{40, 2, 32}, GbdtSweepCase{20, 8, 128}),
    [](const ::testing::TestParamInfo<GbdtSweepCase>& info) {
      // Built with += (not operator+ chains) to dodge GCC 12's spurious
      // -Wrestrict warning on `const char* + std::string&&` (GCC PR105651).
      std::string name = "t";
      name += std::to_string(info.param.trees);
      name += "_d";
      name += std::to_string(info.param.depth);
      name += "_b";
      name += std::to_string(info.param.bins);
      return name;
    });

// ------------------------------------------- trace-class calibration

class TraceCalibration : public ::testing::TestWithParam<gen::TraceClass> {};

TEST_P(TraceCalibration, MeanSizeTracksTable1) {
  const auto t = gen::make_trace(GetParam(), 40'000, 91);
  const auto s = trace::summarize(t);
  double expected_mb = 0.0;
  switch (GetParam()) {
    case gen::TraceClass::kCdnA: expected_mb = 25.5; break;
    case gen::TraceClass::kCdnB: expected_mb = 68.4; break;
    case gen::TraceClass::kCdnC: expected_mb = 100.0; break;
    case gen::TraceClass::kWiki: expected_mb = 69.5; break;
  }
  EXPECT_NEAR(s.mean_content_size_mb / expected_mb, 1.0, 0.35);
}

TEST_P(TraceCalibration, DurationMatchesTable1) {
  const auto cfg = gen::make_config(GetParam(), 30'000, 92);
  const auto t = gen::generate_cdn_trace(cfg);
  EXPECT_NEAR(t.duration() / cfg.duration_seconds, 1.0, 0.3);
}

TEST_P(TraceCalibration, LruDominatedByBounds) {
  const auto t = gen::make_trace(GetParam(), 15'000, 93);
  const auto capacity = gen::headline_cache_size(GetParam(), 0.015);
  auto lru = core::make_policy("LRU", capacity);
  const double lru_ratio = sim::simulate(*lru, t).object_hit_ratio();
  const auto pfoo = opt::infinite_cap(t.requests());
  EXPECT_LE(lru_ratio, pfoo.hit_ratio() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Classes, TraceCalibration,
                         ::testing::Values(gen::TraceClass::kCdnA,
                                           gen::TraceClass::kCdnB,
                                           gen::TraceClass::kCdnC,
                                           gen::TraceClass::kWiki),
                         [](const ::testing::TestParamInfo<gen::TraceClass>& info) {
                           std::string name = gen::to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace lhr
