// The streaming trace layer: TraceSource cursors, the packed .lhrt binary
// format and its mmap reader, the bounded-memory generator, and the spill
// behaviour of runner::TraceCache. Includes the concurrency equivalence
// suite (replay over a shared mapping at 1/2/4/8 workers) run under TSan
// in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "gen/streaming.hpp"
#include "runner/trace_cache.hpp"
#include "server/cdn_server.hpp"
#include "server/sharded_cache.hpp"
#include "sim/engine.hpp"
#include "trace/lhrt.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace lhr {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "lhr_trace_source_test_" + name;
}

trace::Trace small_trace() {
  trace::Trace t;
  for (std::size_t i = 0; i < 1000; ++i) {
    t.push_back({0.25 * static_cast<double>(i), i % 37, 100 + i % 7});
  }
  return t;
}

bool same_records(std::span<const trace::Request> a,
                  std::span<const trace::Request> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].key != b[i].key || a[i].size != b[i].size) {
      return false;
    }
  }
  return true;
}

// ----------------------------------------------------------- cursors

TEST(TraceSource, CursorWalksWholeTraceInChunks) {
  const trace::Trace t = small_trace();
  auto cursor = t.cursor();
  std::size_t seen = 0;
  std::span<const trace::Request> chunk;
  while (!(chunk = cursor->next_chunk(64)).empty()) {
    for (const auto& r : chunk) {
      EXPECT_EQ(r.key, seen % 37);
      ++seen;
    }
    EXPECT_EQ(cursor->position(), seen);
  }
  EXPECT_EQ(seen, t.size());
}

TEST(TraceSource, CursorHonorsBeginEndWindow) {
  const trace::Trace t = small_trace();
  auto cursor = t.cursor(100, 230);
  EXPECT_EQ(cursor->position(), 100u);
  std::size_t seen = 0;
  std::span<const trace::Request> chunk;
  while (!(chunk = cursor->next_chunk(33)).empty()) {
    EXPECT_EQ(chunk.front().key, (100 + seen) % 37);
    seen += chunk.size();
  }
  EXPECT_EQ(seen, 130u);
  // Degenerate and clamped windows.
  EXPECT_TRUE(t.cursor(500, 500)->next_chunk(16).empty());
  EXPECT_TRUE(t.cursor(5000, trace::kTraceNpos)->next_chunk(16).empty());
}

TEST(TraceSource, RangeForIterationMatchesVector) {
  const trace::Trace t = small_trace();
  const trace::TraceSource& src = t;  // force the chunked base iterator
  std::size_t i = 0;
  for (const trace::Request& r : src) {
    EXPECT_EQ(r.key, t.requests()[i].key);
    ++i;
  }
  EXPECT_EQ(i, t.size());
}

TEST(TraceSource, MaterializeCopiesStreamedSource) {
  const trace::Trace t = small_trace();
  const trace::Trace copy = trace::materialize(t);
  EXPECT_TRUE(same_records(copy.requests(), t.requests()));

  trace::Trace storage;
  const auto span = trace::contiguous_or_materialize(t, storage);
  EXPECT_EQ(span.data(), t.requests().data());  // zero-copy for contiguous
  EXPECT_TRUE(storage.empty());
}

// ----------------------------------------------------------- .lhrt format

TEST(Lhrt, RoundTripsRecordsAndMetadata) {
  const std::string path = temp_path("roundtrip.lhrt");
  const trace::Trace t = small_trace();
  trace::write_lhrt_file(t, path, /*seed=*/77,
                         static_cast<std::int32_t>(gen::TraceClass::kCdnB));

  const trace::MappedTrace mapped(path);
  EXPECT_EQ(mapped.size(), t.size());
  EXPECT_EQ(mapped.seed(), 77u);
  EXPECT_EQ(mapped.trace_class(), static_cast<std::int32_t>(gen::TraceClass::kCdnB));
  EXPECT_DOUBLE_EQ(mapped.duration(), t.duration());
  ASSERT_TRUE(mapped.contiguous().has_value());
  EXPECT_TRUE(same_records(*mapped.contiguous(), t.requests()));
  std::remove(path.c_str());
}

TEST(Lhrt, RoundTripsEmptyTrace) {
  const std::string path = temp_path("empty.lhrt");
  trace::write_lhrt_file(trace::Trace{}, path);
  const trace::MappedTrace mapped(path);
  EXPECT_EQ(mapped.size(), 0u);
  EXPECT_EQ(mapped.duration(), 0.0);
  EXPECT_TRUE(mapped.cursor()->next_chunk(16).empty());
  std::remove(path.c_str());
}

TEST(Lhrt, WriterChunkingDoesNotChangeTheFile) {
  const trace::Trace t = small_trace();
  const std::string one = temp_path("chunk1.lhrt");
  const std::string big = temp_path("chunkbig.lhrt");
  {
    trace::LhrtWriter w(one, 5, 2);
    for (const auto& r : t.requests()) w.append(r);
    w.finish();
  }
  {
    trace::LhrtWriter w(big, 5, 2);
    w.append(t.requests());
    w.finish();
  }
  std::ifstream a(one, std::ios::binary), b(big, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(b)), {});
  EXPECT_EQ(bytes_a.size(),
            trace::kLhrtHeaderBytes + t.size() * trace::kLhrtRecordBytes);
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(one.c_str());
  std::remove(big.c_str());
}

TEST(Lhrt, RejectsMissingShortAndCorruptFiles) {
  EXPECT_THROW(trace::MappedTrace("/nonexistent/dir/missing.lhrt"),
               std::runtime_error);

  const std::string path = temp_path("corrupt.lhrt");

  // Empty file: shorter than a header.
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  EXPECT_THROW(trace::MappedTrace{path}, std::runtime_error);

  // Bad magic (a text file, say).
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << std::string(200, 'x');
  }
  EXPECT_THROW(trace::MappedTrace{path}, std::runtime_error);

  // Valid write, then truncate a few bytes off the tail.
  trace::write_lhrt_file(small_trace(), path, 1, 0);
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    in.close();
    bytes.resize(bytes.size() - 5);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  try {
    trace::MappedTrace mapped(path);
    FAIL() << "truncated file must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(Lhrt, RejectsUnfinishedWrite) {
  const std::string path = temp_path("unfinished.lhrt");
  {
    trace::LhrtWriter w(path, 1, 0);
    w.append(small_trace().requests());
    // No finish(): the placeholder header (zero magic) stays in place.
  }
  try {
    trace::MappedTrace mapped(path);
    FAIL() << "unfinished file must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

// ------------------------------------------------- streaming generation

TEST(StreamingGenerator, MatchesInMemoryGeneratorAtEveryChunkSize) {
  const auto config = gen::make_config(gen::TraceClass::kCdnB, 20'000, 31);
  const trace::Trace reference = gen::generate_cdn_trace(config);
  const gen::StreamingGenerator streaming(config);
  ASSERT_EQ(streaming.size(), reference.size());
  EXPECT_DOUBLE_EQ(streaming.duration(), reference.duration());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{4093},
                                  std::size_t{1} << 20}) {
    auto cursor = streaming.cursor();
    std::size_t i = 0;
    std::span<const trace::Request> got;
    while (!(got = cursor->next_chunk(chunk)).empty()) {
      for (const auto& r : got) {
        ASSERT_LT(i, reference.size());
        const auto& want = reference.requests()[i];
        ASSERT_EQ(r.time, want.time) << "chunk=" << chunk << " i=" << i;
        ASSERT_EQ(r.key, want.key) << "chunk=" << chunk << " i=" << i;
        ASSERT_EQ(r.size, want.size) << "chunk=" << chunk << " i=" << i;
        ++i;
      }
    }
    EXPECT_EQ(i, reference.size()) << "chunk=" << chunk;
  }
}

TEST(StreamingGenerator, MidTraceCursorFastForwards) {
  const auto config = gen::make_config(gen::TraceClass::kWiki, 5'000, 9);
  const trace::Trace reference = gen::generate_cdn_trace(config);
  const gen::StreamingGenerator streaming(config);
  auto cursor = streaming.cursor(4'321);
  const auto chunk = cursor->next_chunk(100);
  ASSERT_EQ(chunk.size(), 100u);
  EXPECT_TRUE(same_records(chunk, reference.requests().subspan(4'321, 100)));
}

TEST(StreamingGenerator, GeneratedLhrtFileIsChunkInvariantAndMatchesMemory) {
  const auto config = gen::make_config(gen::TraceClass::kCdnA, 10'000, 123);
  const std::string a = temp_path("gen_a.lhrt");
  const std::string b = temp_path("gen_b.lhrt");
  gen::generate_lhrt_file(config, a, /*chunk_requests=*/1);
  gen::generate_lhrt_file(config, b, /*chunk_requests=*/1 << 20);

  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(bytes_a, bytes_b);

  const trace::MappedTrace mapped(a);
  EXPECT_EQ(mapped.seed(), config.seed);
  EXPECT_EQ(mapped.trace_class(), static_cast<std::int32_t>(gen::TraceClass::kCdnA));
  const trace::Trace reference = gen::generate_cdn_trace(config);
  EXPECT_TRUE(same_records(mapped.requests(), reference.requests()));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ------------------------------------------------- end-to-end equivalence

TEST(TraceSourceEquivalence, SimulateIsIdenticalAcrossSourceKinds) {
  const auto config = gen::make_config(gen::TraceClass::kCdnA, 30'000, 7);
  const trace::Trace in_memory = gen::generate_cdn_trace(config);
  const std::string path = temp_path("sim_equiv.lhrt");
  gen::generate_lhrt_file(config, path);
  const trace::MappedTrace mapped(path);
  const gen::StreamingGenerator streaming(config);
  const std::uint64_t capacity = 1ULL << 24;

  const auto run = [&](const trace::TraceSource& src) {
    auto policy = core::make_policy("LRU", capacity);
    return sim::simulate(*policy, src);
  };
  const auto a = run(in_memory);
  const auto b = run(mapped);
  const auto c = run(streaming);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.bytes_hit, b.bytes_hit);
  EXPECT_EQ(a.hits, c.hits);
  EXPECT_EQ(a.bytes_hit, c.bytes_hit);
  EXPECT_EQ(a.windows.size(), b.windows.size());
  std::remove(path.c_str());
}

TEST(TraceSourceEquivalence, ConcurrentReplayOverMappedTraceMatchesEveryThreadCount) {
  const auto config = gen::make_config(gen::TraceClass::kCdnB, 20'000, 11);
  const std::string path = temp_path("replay_equiv.lhrt");
  gen::generate_lhrt_file(config, path);
  const trace::MappedTrace mapped(path);
  const trace::Trace in_memory = gen::generate_cdn_trace(config);
  const std::uint64_t capacity = 1ULL << 24;

  const auto replay = [&](const trace::TraceSource& src, std::size_t threads) {
    auto backend = std::make_unique<server::ShardedCache>(
        16, capacity, [](std::uint64_t cap) { return core::make_policy("LRU", cap); });
    server::CdnServer server(std::move(backend), server::ServerConfig{});
    return threads == 0
               ? server.replay(src, server::ReplayMode::kNormal)
               : server.replay_concurrent(src, server::ReplayMode::kNormal, threads);
  };

  const auto reference = replay(in_memory, 0);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    const auto got = replay(mapped, threads);
    EXPECT_EQ(got.requests, reference.requests) << threads << " threads";
    EXPECT_EQ(got.hits, reference.hits) << threads << " threads";
    EXPECT_EQ(got.bytes_served, reference.bytes_served) << threads << " threads";
    EXPECT_EQ(got.wan_bytes, reference.wan_bytes) << threads << " threads";
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------ TraceCache spill

TEST(TraceCacheSpill, SpillsToDiskAndServesMappedTrace) {
  const std::string dir = temp_path("spill_cache_dir");
  runner::TraceCache::Options opts;
  opts.requests_per_trace = 3'000;
  opts.seed = 17;
  opts.spill_mb = 0;  // spill everything
  opts.cache_dir = dir;
  runner::TraceCache cache(opts);
  const trace::TraceSource& src = cache.get(gen::TraceClass::kCdnC);
  const auto* mapped = dynamic_cast<const trace::MappedTrace*>(&src);
  ASSERT_NE(mapped, nullptr);
  EXPECT_EQ(mapped->seed(), 17u);

  const trace::Trace direct = gen::make_trace(gen::TraceClass::kCdnC, 3'000, 17);
  EXPECT_TRUE(same_records(mapped->requests(), direct.requests()));

  // A second cache with the same knobs reuses the spilled file (same path).
  runner::TraceCache cache2(opts);
  const auto* mapped2 =
      dynamic_cast<const trace::MappedTrace*>(&cache2.get(gen::TraceClass::kCdnC));
  ASSERT_NE(mapped2, nullptr);
  EXPECT_EQ(mapped2->path(), mapped->path());
  EXPECT_TRUE(same_records(mapped2->requests(), direct.requests()));

  std::remove(mapped->path().c_str());
}

TEST(TraceCacheSpill, TraceFileOverrideServesTheSameMappingForEveryClass) {
  const std::string path = temp_path("override.lhrt");
  trace::write_lhrt_file(small_trace(), path, 3, trace::kLhrtClassUnknown);
  runner::TraceCache::Options opts;
  opts.requests_per_trace = 50'000;  // ignored by the override
  opts.seed = 99;
  opts.trace_file = path;
  runner::TraceCache cache(opts);
  const auto& a = cache.get(gen::TraceClass::kCdnA);
  const auto& b = cache.get(gen::TraceClass::kWiki);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_NE(dynamic_cast<const trace::MappedTrace*>(&a), nullptr);
  std::remove(path.c_str());
}

// -------------------------------------------------- text loader hardening

TEST(TraceTextLoader, ReportsPathAndLineNumberOnMalformedLine) {
  const std::string path = temp_path("bad_line.txt");
  {
    std::ofstream out(path);
    out << "1.0 10 100\n";
    out << "2.0 11 100\n";
    out << "3.0 banana 100\n";
  }
  try {
    (void)trace::read_trace_file(path);
    FAIL() << "malformed line must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lhr
