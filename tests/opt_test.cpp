#include <gtest/gtest.h>

#include <vector>

#include "opt/bounds.hpp"
#include "opt/exact_opt.hpp"
#include "opt/next_use.hpp"
#include "util/rng.hpp"

namespace lhr::opt {
namespace {

using trace::Request;

std::vector<Request> seq(std::initializer_list<std::pair<trace::Key, std::uint64_t>> kv) {
  std::vector<Request> out;
  double t = 0.0;
  for (const auto& [key, size] : kv) out.push_back({t += 1.0, key, size});
  return out;
}

// --------------------------------------------------------------- NextUse

TEST(NextUse, HandComputed) {
  const auto reqs = seq({{1, 1}, {2, 1}, {1, 1}, {3, 1}, {2, 1}, {1, 1}});
  const auto next = next_use_indices(reqs);
  EXPECT_EQ(next[0], 2u);
  EXPECT_EQ(next[1], 4u);
  EXPECT_EQ(next[2], 5u);
  EXPECT_EQ(next[3], kNoNextUse);
  EXPECT_EQ(next[4], kNoNextUse);
  EXPECT_EQ(next[5], kNoNextUse);
}

TEST(NextUse, PrevIsInverseOfNext) {
  util::Xoshiro256 rng(31);
  std::vector<Request> reqs;
  for (int i = 0; i < 500; ++i) {
    reqs.push_back({static_cast<double>(i), rng.next_below(40), 1});
  }
  const auto next = next_use_indices(reqs);
  const auto prev = prev_use_indices(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (next[i] != kNoNextUse) {
      EXPECT_EQ(prev[next[i]], i);
    }
    if (prev[i] != kNoNextUse) {
      EXPECT_EQ(next[prev[i]], i);
    }
  }
}

TEST(NextUse, EmptyInput) {
  EXPECT_TRUE(next_use_indices({}).empty());
  EXPECT_TRUE(prev_use_indices({}).empty());
}

// ---------------------------------------------------------------- Belady

TEST(Belady, ClassicTextbookExample) {
  // Unit sizes, capacity 3. Reference string 1..5 with reuse.
  const auto reqs = seq({{1, 1}, {2, 1}, {3, 1}, {4, 1}, {1, 1}, {2, 1},
                         {5, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}});
  const auto r = belady(reqs, 3);
  // Belady on this string (cap 3): misses = 1,2,3,4,5,3,4 (7), hits = 5.
  EXPECT_EQ(r.hits, 5u);
}

TEST(Belady, MatchesExactOptForEqualSizes) {
  util::Xoshiro256 rng(71);
  for (int instance = 0; instance < 40; ++instance) {
    std::vector<Request> reqs;
    const std::size_t n_keys = 3 + rng.next_below(5);
    for (int i = 0; i < 20; ++i) {
      reqs.push_back({static_cast<double>(i), rng.next_below(n_keys), 1});
    }
    const std::uint64_t capacity = 1 + rng.next_below(3);
    const auto b = belady(reqs, capacity);
    const auto exact = exact_opt_hits(reqs, capacity);
    ASSERT_EQ(b.hits, exact) << "instance " << instance << " cap " << capacity;
  }
}

TEST(Belady, ZeroHitsOnOneHitWonderStream) {
  const auto reqs = seq({{1, 1}, {2, 1}, {3, 1}, {4, 1}});
  EXPECT_EQ(belady(reqs, 2).hits, 0u);
}

TEST(Belady, SkipsOversizedObjects) {
  const auto reqs = seq({{1, 100}, {1, 100}, {2, 1}, {2, 1}});
  const auto r = belady(reqs, 10);
  EXPECT_EQ(r.hits, 1u);  // only key 2 can be cached
}

// ---------------------------------------------------------- Belady-Size

TEST(BeladySize, UpperBoundsExactOptOnVariableSizes) {
  // Belady-Size is a heuristic, not a guaranteed bound — but with exact
  // (unsampled) victim selection it should match or beat OPT on most tiny
  // instances. We assert it never falls far below OPT across instances,
  // mirroring the paper's Fig 2 observation that it is a loose "bound".
  util::Xoshiro256 rng(99);
  int at_least_opt = 0;
  constexpr int kInstances = 30;
  for (int instance = 0; instance < kInstances; ++instance) {
    std::vector<Request> reqs;
    const std::size_t n_keys = 3 + rng.next_below(4);
    std::vector<std::uint64_t> sizes;
    for (std::size_t k = 0; k < n_keys; ++k) sizes.push_back(1 + rng.next_below(8));
    for (int i = 0; i < 18; ++i) {
      const auto k = rng.next_below(n_keys);
      reqs.push_back({static_cast<double>(i), k, sizes[k]});
    }
    const std::uint64_t capacity = 4 + rng.next_below(8);
    const auto bs = belady_size(reqs, capacity, /*sample_size=*/0);
    const auto exact = exact_opt_hits(reqs, capacity);
    if (bs.hits >= exact) ++at_least_opt;
  }
  EXPECT_GE(at_least_opt, kInstances / 2);
}

TEST(BeladySize, PrefersEvictingLargeFarObjects) {
  // Capacity 10. Small hot object (size 1) + large cold object (size 9).
  // When key 3 (size 9) arrives, Belady-Size must evict the big far one.
  const auto reqs = seq({{1, 1}, {2, 9}, {3, 9}, {1, 1}, {3, 9}, {1, 1}, {2, 9}});
  const auto r = belady_size(reqs, 10, 0);
  // Hits achievable: 1 at idx3, 3 at idx4, 1 at idx5 => 3 hits (2 misses re-fetch).
  EXPECT_GE(r.hits, 3u);
}

// ----------------------------------------------------------- InfiniteCap

TEST(InfiniteCap, HitsAllReRequests) {
  const auto reqs = seq({{1, 5}, {2, 5}, {1, 5}, {1, 5}, {3, 5}, {2, 5}});
  const auto r = infinite_cap(reqs);
  EXPECT_EQ(r.requests, 6u);
  EXPECT_EQ(r.hits, 3u);
}

TEST(InfiniteCap, DominatesEveryBound) {
  util::Xoshiro256 rng(5);
  std::vector<Request> reqs;
  for (int i = 0; i < 2000; ++i) {
    const auto k = rng.next_below(100);
    reqs.push_back({static_cast<double>(i), k, 1 + (k % 50) * 100});
  }
  const auto inf = infinite_cap(reqs);
  for (const std::uint64_t cap : {1000ULL, 10'000ULL, 100'000ULL}) {
    EXPECT_GE(inf.hits, belady(reqs, cap).hits);
    EXPECT_GE(inf.hits, belady_size(reqs, cap).hits);
    EXPECT_GE(inf.hits, pfoo_l(reqs, cap).hits);
  }
}

// ---------------------------------------------------------------- PFOO-L

TEST(PfooL, UpperBoundsExactOpt) {
  util::Xoshiro256 rng(123);
  for (int instance = 0; instance < 40; ++instance) {
    std::vector<Request> reqs;
    const std::size_t n_keys = 3 + rng.next_below(4);
    std::vector<std::uint64_t> sizes;
    for (std::size_t k = 0; k < n_keys; ++k) sizes.push_back(1 + rng.next_below(6));
    for (int i = 0; i < 16; ++i) {
      const auto k = rng.next_below(n_keys);
      reqs.push_back({static_cast<double>(i), k, sizes[k]});
    }
    const std::uint64_t capacity = 3 + rng.next_below(8);
    const auto p = pfoo_l(reqs, capacity);
    const auto exact = exact_opt_hits(reqs, capacity);
    ASSERT_GE(p.hits, exact) << "instance " << instance;
  }
}

TEST(PfooL, MonotoneInCapacity) {
  util::Xoshiro256 rng(7);
  std::vector<Request> reqs;
  for (int i = 0; i < 3000; ++i) {
    const auto k = rng.next_below(200);
    reqs.push_back({static_cast<double>(i), k, 100 + (k % 10) * 333});
  }
  std::uint64_t prev = 0;
  for (const std::uint64_t cap : {500ULL, 5'000ULL, 50'000ULL, 500'000ULL}) {
    const auto hits = pfoo_l(reqs, cap).hits;
    EXPECT_GE(hits, prev);
    prev = hits;
  }
}

TEST(PfooL, HugeCapacityEqualsInfiniteCap) {
  util::Xoshiro256 rng(8);
  std::vector<Request> reqs;
  for (int i = 0; i < 1000; ++i) {
    reqs.push_back({static_cast<double>(i), rng.next_below(50), 10});
  }
  EXPECT_EQ(pfoo_l(reqs, 1ULL << 40).hits, infinite_cap(reqs).hits);
}

// --------------------------------------------------------------- ExactOpt

TEST(ExactOpt, HandComputedTinyInstances) {
  // Capacity 1, unit sizes: alternate 1,2,1,2 => no hits possible... except
  // OPT keeps 1: requests 1,2,1,2 => keep 1, bypass 2: hit at idx 2. 1 hit.
  const auto reqs = seq({{1, 1}, {2, 1}, {1, 1}, {2, 1}});
  EXPECT_EQ(exact_opt_hits(reqs, 1), 1u);
  // Capacity 2: both fit: hits at idx 2 and 3.
  EXPECT_EQ(exact_opt_hits(reqs, 2), 2u);
}

TEST(ExactOpt, BypassBeatsAdmission) {
  // Capacity 2. Keys: a(size 2) hot, b(size 2) requested once in between.
  const auto reqs = seq({{1, 2}, {2, 2}, {1, 2}});
  EXPECT_EQ(exact_opt_hits(reqs, 2), 1u);  // keep a, bypass b
}

TEST(ExactOpt, ThrowsBeyond16Keys) {
  std::vector<Request> reqs;
  for (trace::Key k = 0; k < 17; ++k) reqs.push_back({static_cast<double>(k), k, 1});
  EXPECT_THROW((void)exact_opt_hits(reqs, 4), std::invalid_argument);
}

TEST(BoundResult, RatioAccessors) {
  BoundResult r{.name = "x", .requests = 10, .hits = 4,
                .bytes_requested = 100.0, .bytes_hit = 25.0};
  EXPECT_DOUBLE_EQ(r.hit_ratio(), 0.4);
  EXPECT_DOUBLE_EQ(r.byte_hit_ratio(), 0.25);
}

}  // namespace
}  // namespace lhr::opt
