// Process-parallel replay engine tests (server/proc_replay + core/proc_replay).
//
// The suite spawns real worker processes: this binary re-execs ITSELF in
// hidden --replay-worker mode, so main() below installs the worker hook
// before gtest ever sees argv. The headline property is the ISSUE's
// acceptance bar — the canonical report of `--procs P` is byte-identical to
// `--procs 1` for P in {1,2,4} at 1 and 2 threads per process, with and
// without an origin fault schedule — plus the failure contract: a crashed,
// killed or mis-behaving worker surfaces as a per-worker diagnostic in a
// thrown error, never as a hang or a silently-wrong merge.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/proc_replay.hpp"
#include "gen/cdn_model.hpp"
#include "runner/trace_cache.hpp"
#include "server/proc_replay.hpp"
#include "trace/lhrt.hpp"
#include "util/subprocess.hpp"

namespace {

using namespace lhr;

// ------------------------------------------------------------ fixtures

constexpr std::size_t kRequests = 20'000;
constexpr std::uint64_t kSeed = 42;

std::string temp_dir() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("lhr-proc-replay-test-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  return dir.string();
}

/// The shared .lhrt every test replays: written once per test process, and
/// removed (with the rest of the scratch directory) at exit.
const std::string& test_trace_path() {
  static const std::string path = [] {
    const std::string p = temp_dir() + "/cdn-a.lhrt";
    const trace::Trace t = gen::make_trace(gen::TraceClass::kCdnA, kRequests, kSeed);
    trace::write_lhrt_file(t, p, kSeed, static_cast<std::int32_t>(gen::TraceClass::kCdnA));
    return p;
  }();
  return path;
}

struct ScratchCleanup {
  ~ScratchCleanup() {
    std::error_code ec;
    std::filesystem::remove_all(temp_dir(), ec);
  }
} const scratch_cleanup;

core::ProcReplayJob base_job() {
  core::ProcReplayJob job;
  job.trace_path = test_trace_path();
  job.policy = "LRU";
  job.capacity_bytes = 64ULL << 20;
  job.shards = 16;
  job.mode = server::ReplayMode::kMax;
  job.window_requests = 5'000;
  return job;
}

double test_trace_duration() {
  static const double duration = [] {
    const trace::MappedTrace t(test_trace_path());
    return t.duration();
  }();
  return duration;
}

std::string fault_spec_for_trace() {
  const double d = test_trace_duration();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "outage:%.3f-%.3f;error:%.3f-%.3f@0.5;slow:%.3f-%.3f@x4",
                0.10 * d, 0.20 * d, 0.30 * d, 0.50 * d, 0.60 * d, 0.80 * d);
  return buf;
}

// ----------------------------------------------------- partial reports

TEST(ProcReplayTest, PartialReportRoundTrip) {
  const core::ProcReplayJob job = base_job();
  const auto server = core::make_job_server(job);
  const trace::MappedTrace trace(job.trace_path);

  server::ProcReplayOptions opts;
  opts.procs = 2;
  opts.threads = 2;
  opts.mode = job.mode;
  opts.window_requests = job.window_requests;
  const server::PartialReport partial =
      server::replay_worker_slice(*server, trace, /*proc_index=*/1, opts);
  EXPECT_EQ(partial.proc_index, 1u);
  EXPECT_EQ(partial.procs, 2u);
  EXPECT_GT(partial.acc.requests, 0u);

  const std::string encoded = server::encode_partial_report(partial);
  const server::PartialReport decoded = server::decode_partial_report(encoded);
  // Re-encoding the decoded partial reproduces every byte: the codec loses
  // nothing the merge depends on.
  EXPECT_EQ(server::encode_partial_report(decoded), encoded);
  EXPECT_EQ(decoded.acc.requests, partial.acc.requests);
  EXPECT_EQ(decoded.acc.hits, partial.acc.hits);
  EXPECT_EQ(decoded.lock_contentions, partial.lock_contentions);
}

TEST(ProcReplayTest, DecodeRejectsCorruption) {
  const core::ProcReplayJob job = base_job();
  const auto server = core::make_job_server(job);
  const trace::MappedTrace trace(job.trace_path);
  const std::string encoded = server::encode_partial_report(
      server::replay_worker_slice(*server, trace, 0, {}));

  // Truncation at any framing boundary is a hard error, not zero counters.
  EXPECT_THROW((void)server::decode_partial_report(""), std::runtime_error);
  EXPECT_THROW((void)server::decode_partial_report(encoded.substr(0, 16)),
               std::runtime_error);
  EXPECT_THROW(
      (void)server::decode_partial_report(encoded.substr(0, encoded.size() - 1)),
      std::runtime_error);
  EXPECT_THROW((void)server::decode_partial_report(encoded + "x"),
               std::runtime_error);
  std::string bad_magic = encoded;
  bad_magic[0] ^= 0x5A;
  EXPECT_THROW((void)server::decode_partial_report(bad_magic), std::runtime_error);
}

// ------------------------------------------------------- shard algebra

TEST(ProcReplayTest, ShardOwnershipDisjoint) {
  // Process p + thread t host global worker p + t*procs; shard s belongs to
  // global worker s % (procs*threads). The process-level partition must
  // compose: owner(s) lives in process s % procs, and exactly one
  // (process, thread) pair owns each shard.
  for (const std::size_t procs : {1u, 2u, 3u, 4u}) {
    for (const std::size_t threads : {1u, 2u, 3u}) {
      const std::size_t n_global = procs * threads;
      for (std::size_t s = 0; s < 64; ++s) {
        const std::size_t global_owner = s % n_global;
        std::size_t owners = 0;
        for (std::size_t p = 0; p < procs; ++p) {
          for (std::size_t t = 0; t < threads; ++t) {
            if (p + t * procs == global_owner) {
              ++owners;
              EXPECT_EQ(p, s % procs) << "s=" << s << " procs=" << procs
                                      << " threads=" << threads;
            }
          }
        }
        EXPECT_EQ(owners, 1u);
      }
    }
  }
}

// -------------------------------------------------------- determinism

TEST(ProcReplayTest, CanonicalIdenticalAcrossProcsAndThreads) {
  const core::ProcReplayJob base = base_job();

  // In-process single-threaded replay is the reference.
  const auto reference_server = core::make_job_server(base);
  const trace::MappedTrace trace(base.trace_path);
  const std::string reference =
      reference_server
          ->replay_concurrent(trace, base.mode, 1, base.window_requests)
          .canonical_summary();
  ASSERT_FALSE(reference.empty());

  for (const std::size_t procs : {1u, 2u, 4u}) {
    for (const std::size_t threads : {1u, 2u}) {
      core::ProcReplayJob job = base;
      job.procs = procs;
      job.threads = threads;
      const server::ServerReport report = core::run_proc_replay(job);
      EXPECT_EQ(report.canonical_summary(), reference)
          << "procs=" << procs << " threads=" << threads;
      EXPECT_EQ(report.replay_threads, procs * threads);
    }
  }
}

TEST(ProcReplayTest, FaultScheduleCanonicalIdentical) {
  core::ProcReplayJob base = base_job();
  base.origin_profile = "lognormal:sigma=0.5,timeout=0.25,retries=3";
  base.fault_schedule = fault_spec_for_trace();
  base.freshness_ttl_s = test_trace_duration() / 10.0;

  base.procs = 1;
  base.threads = 1;
  const std::string reference = core::run_proc_replay(base).canonical_summary();
  // The schedule must actually bite for this test to mean anything.
  EXPECT_NE(reference.find("origin:"), std::string::npos);

  for (const std::size_t procs : {2u, 4u}) {
    for (const std::size_t threads : {1u, 2u}) {
      core::ProcReplayJob job = base;
      job.procs = procs;
      job.threads = threads;
      EXPECT_EQ(core::run_proc_replay(job).canonical_summary(), reference)
          << "procs=" << procs << " threads=" << threads;
    }
  }
}

TEST(ProcReplayTest, OpenLoopAggregatesDeterministic) {
  core::ProcReplayJob base = base_job();
  base.open_loop = true;
  base.mode = server::ReplayMode::kNormal;

  base.procs = 1;
  const server::ServerReport reference = core::run_proc_replay(base);
  EXPECT_TRUE(reference.open_loop);
  EXPECT_EQ(reference.requests, kRequests);

  base.procs = 2;
  const server::ServerReport fanned = core::run_proc_replay(base);
  EXPECT_TRUE(fanned.open_loop);
  // Canonical aggregates (counters, latency quantiles, windows) stay
  // byte-identical; wall-clock-derived open-loop rates legitimately differ.
  EXPECT_EQ(fanned.canonical_summary(), reference.canonical_summary());
  EXPECT_EQ(fanned.queued_requests, reference.queued_requests);
}

// ----------------------------------------------------- failure contract

TEST(ProcReplayTest, CrashedWorkerSurfacesDiagnostic) {
  ::setenv("LHR_PROC_REPLAY_TEST_CRASH", "1", 1);
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("LHR_PROC_REPLAY_TEST_CRASH"); }
  } guard;

  core::ProcReplayJob job = base_job();
  job.procs = 2;
  try {
    (void)core::run_proc_replay(job);
    FAIL() << "a SIGKILLed worker must fail the parent replay";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker 1"), std::string::npos) << what;
    EXPECT_NE(what.find("signal"), std::string::npos) << what;
  }
}

TEST(ProcReplayTest, WorkerExitCodeSurfaces) {
  // A worker that rejects its argv (version-skew protection) exits 1; the
  // parent must surface that exit code, not hang on the empty pipe.
  const core::ProcReplayJob job = base_job();
  const auto parent = core::make_job_server(job);
  const trace::MappedTrace trace(job.trace_path);
  try {
    (void)server::replay_multiprocess(
        *parent, trace, {}, util::self_exe_path(), [](std::size_t) {
          return std::vector<std::string>{core::kReplayWorkerFlag,
                                          "--worker-bogus", "1"};
        });
    FAIL() << "a worker exiting non-zero must fail the parent replay";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exit code 1"), std::string::npos) << what;
    EXPECT_NE(what.find("no partial report"), std::string::npos) << what;
  }
}

// -------------------------------------------------- trace-cache spill

TEST(ProcReplayTest, TraceCacheSpillLocked) {
  runner::TraceCache::Options options;
  options.requests_per_trace = 5'000;
  options.seed = 7;
  options.spill_mb = 0;  // force the on-disk path for every class
  options.cache_dir = temp_dir() + "/trace-cache";

  // Two caches (standing in for two processes) race to spill the same keyed
  // file; the flock serializes generation, so both end up mapping one valid
  // copy.
  runner::TraceCache a(options);
  runner::TraceCache b(options);
  std::string path_a, path_b;
  std::thread ta([&] { path_a = a.lhrt_path_for(gen::TraceClass::kCdnB); });
  std::thread tb([&] { path_b = b.lhrt_path_for(gen::TraceClass::kCdnB); });
  ta.join();
  tb.join();
  EXPECT_EQ(path_a, path_b);

  const trace::MappedTrace mapped(path_a);
  EXPECT_EQ(mapped.size(), options.requests_per_trace);
  EXPECT_EQ(mapped.seed(), options.seed);
  EXPECT_EQ(mapped.trace_class(), static_cast<int>(gen::TraceClass::kCdnB));

  // No stray temp files survive a completed generation.
  std::size_t lhrt_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.cache_dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp."), std::string::npos) << name;
    if (entry.path().extension() == ".lhrt") ++lhrt_files;
  }
  EXPECT_EQ(lhrt_files, 1u);

  // get() serves the mapped spill through the TraceSource interface too.
  EXPECT_EQ(a.get(gen::TraceClass::kCdnB).size(), options.requests_per_trace);
}

}  // namespace

// Custom main: the worker hook must run before InitGoogleTest so a spawned
// worker never parses gtest flags (and gtest's --gtest_list_tests discovery
// still works — worker argv always starts with --replay-worker, which the
// hook consumes and gtest never sees).
int main(int argc, char** argv) {
  if (const int rc = lhr::core::proc_replay_worker_main(argc, argv); rc >= 0) {
    return rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
