#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "core/lhr_cache.hpp"
#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "gen/markov_modulated.hpp"
#include "gen/zipf.hpp"
#include "policies/lru.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace lhr::core {
namespace {

/// Small LHR configuration for fast tests: small caches roll windows often.
LhrConfig test_config() {
  LhrConfig cfg;
  cfg.gbdt.num_trees = 10;
  cfg.gbdt.max_depth = 4;
  cfg.max_train_samples = 10'000;
  cfg.min_train_samples = 64;  // test windows are tiny
  return cfg;
}

trace::Trace zipf_trace(std::size_t n, std::size_t contents, double alpha,
                        std::uint64_t obj_size, std::uint64_t seed) {
  gen::ZipfSampler zipf(contents, alpha);
  util::Xoshiro256 rng(seed);
  trace::Trace t;
  double time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    time += 0.1;
    t.push_back({time, zipf.sample(rng), obj_size});
  }
  return t;
}

TEST(LhrCache, NamesReflectAblations) {
  EXPECT_EQ(make_policy("LHR", 1 << 20)->name(), "LHR");
  EXPECT_EQ(make_policy("D-LHR", 1 << 20)->name(), "D-LHR");
  EXPECT_EQ(make_policy("N-LHR", 1 << 20)->name(), "N-LHR");
}

TEST(LhrCache, CapacityInvariant) {
  LhrCache lhr(100'000, test_config());
  const auto t = zipf_trace(30'000, 2'000, 0.9, 1'000, 1);
  for (const auto& r : t) {
    lhr.access(r);
    ASSERT_LE(lhr.used_bytes(), lhr.capacity_bytes());
  }
}

TEST(LhrCache, TrainsAfterFirstWindow) {
  LhrCache lhr(50'000, test_config());
  // Window = 4 x 50k = 200k unique bytes = 200 contents of 1000 B; a 2000-
  // content population crosses several windows within 30k requests.
  const auto t = zipf_trace(30'000, 2'000, 0.9, 1'000, 2);
  for (const auto& r : t) lhr.access(r);
  EXPECT_GT(lhr.windows_seen(), 1u);
  EXPECT_TRUE(lhr.model_trained());
  EXPECT_GT(lhr.trainings(), 0u);
  EXPECT_GT(lhr.training_seconds(), 0.0);
}

TEST(LhrCache, ThresholdStaysInUnitInterval) {
  LhrCache lhr(50'000, test_config());
  const auto t = gen::make_trace(gen::TraceClass::kCdnA, 20'000, 3);
  for (const auto& r : t) {
    lhr.access(r);
    ASSERT_GE(lhr.threshold(), 0.0);
    ASSERT_LE(lhr.threshold(), 1.0);
  }
}

TEST(LhrCache, DLhrThresholdNeverMoves) {
  LhrConfig cfg = test_config();
  cfg.enable_threshold_estimation = false;
  LhrCache dlhr(50'000, cfg);
  const auto t = zipf_trace(40'000, 2'000, 1.0, 1'000, 4);
  for (const auto& r : t) {
    dlhr.access(r);
    ASSERT_DOUBLE_EQ(dlhr.threshold(), 0.5);
  }
}

TEST(LhrCache, DetectionReducesTrainings) {
  // On a stationary workload the detector should skip most retrainings,
  // while N-LHR retrains every window (the §7.4.2 claim).
  LhrConfig with_detection = test_config();
  LhrConfig without = test_config();
  without.enable_detection = false;
  without.enable_threshold_estimation = false;

  LhrCache lhr(30'000, with_detection);
  LhrCache nlhr(30'000, without);
  const auto t = zipf_trace(60'000, 3'000, 0.9, 1'000, 5);
  for (const auto& r : t) {
    lhr.access(r);
    nlhr.access(r);
  }
  ASSERT_GT(nlhr.windows_seen(), 3u);
  EXPECT_EQ(nlhr.trainings(), nlhr.windows_seen());
  EXPECT_LT(lhr.trainings(), nlhr.trainings());
}

TEST(LhrCache, HitsOnlyPreviouslySeenKeys) {
  LhrCache lhr(80'000, test_config());
  const auto t = gen::make_trace(gen::TraceClass::kCdnC, 10'000, 6);
  std::unordered_set<trace::Key> seen;
  for (const auto& r : t) {
    if (lhr.access(r)) {
      EXPECT_TRUE(seen.contains(r.key));
    }
    seen.insert(r.key);
  }
}

TEST(LhrCache, CompetitiveWithLruOnZipfWorkload) {
  // LHR must not fall apart on the bread-and-butter workload; on strongly
  // skewed IRM traces it should be at least LRU-competitive once trained.
  const auto t = zipf_trace(80'000, 5'000, 1.1, 1'000, 7);
  const std::uint64_t capacity = 400'000;  // 400 of 5000 objects

  LhrCache lhr(capacity, test_config());
  policy::Lru lru(capacity);
  sim::SimOptions opts;
  opts.warmup_requests = 20'000;  // let the learner bootstrap
  const double lhr_ratio = sim::simulate(lhr, t, opts).object_hit_ratio();
  const double lru_ratio = sim::simulate(lru, t, opts).object_hit_ratio();
  EXPECT_GE(lhr_ratio, lru_ratio - 0.03);
}

TEST(LhrCache, BeatsLruOnOneHitWonderHeavyWorkload) {
  // The admission filter is exactly what LRU lacks: a trace dominated by
  // one-hit wonders plus a hot set. LHR should clearly win after training.
  util::Xoshiro256 rng(8);
  gen::ZipfSampler zipf(200, 1.0);
  trace::Trace t;
  double time = 0.0;
  trace::Key fresh = 1'000'000;
  for (int i = 0; i < 120'000; ++i) {
    time += 0.05;
    if (rng.next_double() < 0.6) {
      t.push_back({time, fresh++, 2'000});  // one-hit wonder
    } else {
      t.push_back({time, zipf.sample(rng), 2'000});
    }
  }
  const std::uint64_t capacity = 60'000;  // 30 objects: room for the hot core

  LhrCache lhr(capacity, test_config());
  policy::Lru lru(capacity);
  sim::SimOptions opts;
  opts.warmup_requests = 40'000;
  const double lhr_ratio = sim::simulate(lhr, t, opts).object_hit_ratio();
  const double lru_ratio = sim::simulate(lru, t, opts).object_hit_ratio();
  EXPECT_GT(lhr_ratio, lru_ratio);
}

TEST(LhrCache, HroLabelSourceIsExposed) {
  LhrCache lhr(50'000, test_config());
  const auto t = zipf_trace(20'000, 1'000, 0.9, 1'000, 9);
  for (const auto& r : t) lhr.access(r);
  EXPECT_GT(lhr.hro_hit_ratio(), 0.0);
  EXPECT_LE(lhr.hro_hit_ratio(), 1.0);
}

TEST(LhrCache, MetadataAccounting) {
  LhrCache lhr(100'000, test_config());
  const auto t = zipf_trace(20'000, 2'000, 0.9, 1'000, 10);
  for (const auto& r : t) lhr.access(r);
  EXPECT_GT(lhr.metadata_bytes(), 0u);
  // Metadata should stay far below the multi-GB scale for this tiny setup.
  EXPECT_LT(lhr.metadata_bytes(), 64u * 1024 * 1024);
}

TEST(LhrCache, AdaptsToMarkovModulatedWorkload) {
  // Smoke version of §7.6: LHR keeps functioning across the Syn One state
  // flips and ends with a sane hit ratio.
  gen::MarkovModulatedConfig cfg;
  cfg.num_requests = 60'000;
  cfg.num_contents = 500;
  cfg.requests_per_state = 15'000;
  cfg.size_model = gen::SizeModel::constant(1'000);
  const auto t = generate_syn_one(cfg);

  LhrCache lhr(100'000, test_config());
  const auto metrics = sim::simulate(lhr, t);
  EXPECT_GT(metrics.object_hit_ratio(), 0.1);
  EXPECT_GT(lhr.windows_seen(), 2u);
}

}  // namespace
}  // namespace lhr::core
