#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "runner/runner.hpp"
#include "runner/trace_cache.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace lhr::runner {
namespace {

// A small trace store shared by the tests in this binary (cheap to fill,
// independent of the LHR_BENCH_* environment).
TraceCache& test_traces() {
  static TraceCache traces(6'000, 13);
  return traces;
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTask) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 10 * (round + 1));
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ActuallyParallel) {
  // With 4 workers, 4 tasks that each wait for the others must all be in
  // flight at once; a serial pool would deadlock (guarded by a timeout).
  util::ThreadPool pool(4);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&arrived] {
      ++arrived;
      const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (arrived.load() < 4 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(arrived.load(), 4);
}

// -------------------------------------------------------------- TraceCache

TEST(TraceCache, MemoizesPerClass) {
  TraceCache cache(2'000, 5);
  const auto& a = cache.get(gen::TraceClass::kCdnA);
  const auto& again = cache.get(gen::TraceClass::kCdnA);
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(a.size(), 2'000u);
}

TEST(TraceCache, MatchesDirectGeneration) {
  TraceCache cache(1'500, 21);
  const auto& cached = cache.get(gen::TraceClass::kWiki);
  const auto direct = gen::make_trace(gen::TraceClass::kWiki, 1'500, 21);
  ASSERT_EQ(cached.size(), direct.size());
  const auto records = cached.contiguous();
  ASSERT_TRUE(records.has_value());  // in-memory below the spill threshold
  for (std::size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].key, direct.requests()[i].key);
    EXPECT_EQ((*records)[i].size, direct.requests()[i].size);
  }
}

TEST(TraceCache, ConcurrentGetIsSafeAndConsistent) {
  // The satellite fix for the old racy lazy-static trace_for: many threads
  // requesting the same (and different) classes must agree on one instance
  // per class and never crash. Run under TSan in CI.
  TraceCache cache(2'000, 9);
  constexpr int kThreads = 16;
  std::vector<const trace::TraceSource*> seen(kThreads * 2, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &seen, t] {
      seen[2 * t] = &cache.get(gen::TraceClass::kCdnB);
      seen[2 * t + 1] = &cache.get(t % 2 ? gen::TraceClass::kCdnC
                                         : gen::TraceClass::kWiki);
    });
  }
  for (auto& t : threads) t.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[2 * t]);
  std::set<const trace::TraceSource*> others(seen.begin() + 1, seen.end());
  // kCdnB + kCdnC + kWiki pointers only.
  EXPECT_LE(others.size(), 3u);
  EXPECT_EQ(cache.get(gen::TraceClass::kCdnB).size(), 2'000u);
}

// ------------------------------------------------------------ SimObserver

struct CountingObserver : sim::SimObserver {
  std::size_t requests = 0;
  std::size_t hits = 0;
  std::size_t windows = 0;
  std::size_t last_window_index = 0;
  double access_seconds = 0.0;

  void on_request(std::size_t, const trace::Request&, bool hit,
                  double seconds) override {
    ++requests;
    hits += hit;
    access_seconds += seconds;
    EXPECT_GE(seconds, 0.0);
  }
  void on_window(std::size_t index, const sim::WindowPoint& w) override {
    ++windows;
    last_window_index = index;
    EXPECT_GT(w.requests, 0u);
  }
};

TEST(SimObserver, SeesEveryRequestAndWindow) {
  const auto& trace = test_traces().get(gen::TraceClass::kCdnA);
  auto policy = core::make_policy("LRU", 64ULL << 20);

  CountingObserver observer;
  sim::SimOptions options;
  options.window_requests = 1'000;
  options.observer = &observer;
  const auto metrics = sim::simulate(*policy, trace, options);

  EXPECT_EQ(observer.requests, trace.size());
  EXPECT_EQ(observer.hits, metrics.hits);
  EXPECT_EQ(observer.windows, metrics.windows.size());
  EXPECT_EQ(observer.last_window_index, metrics.windows.size() - 1);
  EXPECT_GT(observer.access_seconds, 0.0);
  EXPECT_GT(metrics.requests_per_second(), 0.0);
}

TEST(SimObserver, ObservedRunMatchesUnobservedRun) {
  const auto& trace = test_traces().get(gen::TraceClass::kCdnA);
  auto plain = core::make_policy("GDSF", 64ULL << 20);
  auto observed = core::make_policy("GDSF", 64ULL << 20);

  const auto baseline = sim::simulate(*plain, trace);
  CountingObserver observer;
  sim::SimOptions options;
  options.observer = &observer;
  const auto metrics = sim::simulate(*observed, trace, options);

  EXPECT_EQ(metrics.hits, baseline.hits);
  EXPECT_EQ(metrics.requests, baseline.requests);
  EXPECT_EQ(metrics.bytes_hit, baseline.bytes_hit);
}

// ----------------------------------------------------------------- runner

std::vector<Job> determinism_jobs() {
  std::vector<Job> jobs;
  for (const std::string name : {"LRU", "GDSF", "LHR"}) {
    for (const auto c : {gen::TraceClass::kCdnA, gen::TraceClass::kCdnB,
                         gen::TraceClass::kCdnC, gen::TraceClass::kWiki}) {
      Job job;
      job.policy_name = name;
      job.trace_class = c;
      job.capacity_bytes = 32ULL << 20;
      job.options.window_requests = 1'000;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

void expect_metrics_identical(const sim::SimMetrics& a, const sim::SimMetrics& b,
                              const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.bytes_requested, b.bytes_requested) << label;
  EXPECT_EQ(a.bytes_hit, b.bytes_hit) << label;
  ASSERT_EQ(a.windows.size(), b.windows.size()) << label;
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(a.windows[w].requests, b.windows[w].requests) << label;
    EXPECT_EQ(a.windows[w].hits, b.windows[w].hits) << label;
    EXPECT_EQ(a.windows[w].bytes_hit, b.windows[w].bytes_hit) << label;
  }
}

TEST(Runner, ParallelMatchesSerialBitwise) {
  // The acceptance bar for the whole refactor: a parallel run_all over >= 8
  // jobs (12 here: LRU/GDSF/LHR x 4 traces) produces bitwise-identical
  // metrics, in identical order, to the serial loop it replaced.
  const auto jobs = determinism_jobs();

  std::vector<sim::SimMetrics> serial;
  for (const auto& job : jobs) {
    auto policy = core::make_policy(job.policy_name, job.capacity_bytes);
    serial.push_back(
        sim::simulate(*policy, test_traces().get(job.trace_class), job.options));
  }

  RunOptions parallel;
  parallel.threads = 4;
  parallel.traces = &test_traces();
  const auto results = run_all(jobs, parallel);

  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    expect_metrics_identical(results[i].metrics, serial[i], results[i].label);
    EXPECT_EQ(results[i].policy, jobs[i].policy_name);
  }
}

TEST(Runner, ParallelMatchesSingleThreadRunAll) {
  const auto jobs = determinism_jobs();
  RunOptions one, many;
  one.threads = 1;
  one.traces = &test_traces();
  many.threads = 8;
  many.traces = &test_traces();
  const auto a = run_all(jobs, one);
  const auto b = run_all(jobs, many);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_metrics_identical(a[i].metrics, b[i].metrics, a[i].label);
  }
}

TEST(Runner, LabelsAndMetadataFilledIn) {
  Job job;
  job.policy_name = "LRU";
  job.trace_class = gen::TraceClass::kCdnB;
  job.capacity_bytes = 8ULL << 20;
  const auto result = run_one(job, test_traces());
  EXPECT_EQ(result.policy, "LRU");
  EXPECT_EQ(result.trace, gen::to_string(gen::TraceClass::kCdnB));
  EXPECT_EQ(result.label, "LRU/" + gen::to_string(gen::TraceClass::kCdnB));
  EXPECT_EQ(result.capacity_bytes, 8ULL << 20);
  EXPECT_GT(result.metrics.requests, 0u);
}

TEST(Runner, CustomFactoryAndInspectHook) {
  Job job;
  job.label = "custom";
  job.trace_class = gen::TraceClass::kCdnA;
  job.capacity_bytes = 8ULL << 20;
  job.make = [] { return core::make_policy("GDSF", 8ULL << 20); };
  job.inspect = [](const sim::CachePolicy& policy, Result& r) {
    r.set("object_count_hint", double(policy.used_bytes() > 0));
  };
  const auto result = run_one(job, test_traces());
  EXPECT_EQ(result.policy, "GDSF");
  EXPECT_EQ(result.label, "custom");
  EXPECT_EQ(result.stat("object_count_hint"), 1.0);
}

TEST(Runner, FreeFormBodyJob) {
  Job job;
  job.label = "free-form";
  job.body = [](Result& r) {
    r.set("answer", 42.0);
    r.series = {1.0, 2.0};
  };
  const auto results = run_all({job}, {});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].stat("answer"), 42.0);
  EXPECT_EQ(results[0].series.size(), 2u);
  EXPECT_EQ(results[0].metrics.requests, 0u);
}

TEST(Runner, ExplicitTraceOverridesClass) {
  const auto trace = gen::make_trace(gen::TraceClass::kCdnC, 500, 3);
  Job job;
  job.policy_name = "LRU";
  job.capacity_bytes = 1ULL << 20;
  job.trace = &trace;
  const auto result = run_one(job, test_traces());
  EXPECT_EQ(result.trace, "custom");
  EXPECT_EQ(result.metrics.requests, 500u);
}

TEST(Runner, JobExceptionPropagates) {
  std::vector<Job> jobs(3);
  for (auto& job : jobs) {
    job.body = [](Result&) {};
  }
  jobs[1].body = [](Result&) { throw std::runtime_error("boom"); };
  RunOptions options;
  options.threads = 2;
  EXPECT_THROW({ auto r = run_all(jobs, options); }, std::runtime_error);
}

TEST(Runner, UnknownPolicyThrows) {
  Job job;
  job.policy_name = "NoSuchPolicy";
  job.capacity_bytes = 1 << 20;
  RunOptions options;
  options.threads = 4;
  options.traces = &test_traces();
  EXPECT_THROW({ auto r = run_all({job}, options); }, std::invalid_argument);
}

TEST(Runner, ResultStatUpsertAndFallback) {
  Result r;
  r.set("x", 1.0);
  r.set("x", 2.0);
  EXPECT_EQ(r.stat("x"), 2.0);
  EXPECT_EQ(r.stats.size(), 1u);
  EXPECT_EQ(r.stat("missing", -1.0), -1.0);
}

// ------------------------------------------------------------------ JSONL

TEST(Jsonl, ContainsCoreFieldsAndStats) {
  Result r;
  r.label = "LRU/CDN-A";
  r.policy = "LRU";
  r.trace = "CDN-A";
  r.capacity_bytes = 123;
  r.metrics.requests = 10;
  r.metrics.hits = 4;
  r.metrics.bytes_requested = 1000.0;
  r.metrics.bytes_hit = 400.0;
  r.set("extra", 1.5);

  const auto line = to_jsonl(r);
  EXPECT_NE(line.find("\"label\":\"LRU/CDN-A\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"policy\":\"LRU\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"capacity_bytes\":123"), std::string::npos) << line;
  EXPECT_NE(line.find("\"requests\":10"), std::string::npos) << line;
  EXPECT_NE(line.find("\"hits\":4"), std::string::npos) << line;
  EXPECT_NE(line.find("\"object_hit_ratio\":0.4"), std::string::npos) << line;
  EXPECT_NE(line.find("\"stats\":{\"extra\":1.5}"), std::string::npos) << line;
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Jsonl, EscapesStringsAndClampsNonFinite) {
  Result r;
  r.label = "quote\"back\\slash\nnewline";
  r.set("nan", std::nan(""));
  const auto line = to_jsonl(r);
  EXPECT_NE(line.find("quote\\\"back\\\\slash\\nnewline"), std::string::npos) << line;
  EXPECT_NE(line.find("\"nan\":null"), std::string::npos) << line;
}

TEST(Jsonl, WritesOneLinePerResult) {
  std::vector<Result> results(3);
  results[0].label = "a";
  results[1].label = "b";
  results[2].label = "c";
  std::ostringstream out;
  write_jsonl(out, results);
  const auto text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

}  // namespace
}  // namespace lhr::runner
