#include <gtest/gtest.h>

#include "sim/cache_policy.hpp"
#include "sim/engine.hpp"
#include "sim/latency_model.hpp"
#include "trace/trace.hpp"

namespace lhr::sim {
namespace {

/// Test double: hits every request whose key it has seen, never evicts,
/// reports a configurable metadata footprint.
class RecordingPolicy final : public CacheBase {
 public:
  explicit RecordingPolicy(std::uint64_t capacity, std::uint64_t meta = 0)
      : CacheBase(capacity), meta_(meta) {}

  [[nodiscard]] std::string name() const override { return "Recording"; }
  bool access(const trace::Request& r) override {
    ++accesses_;
    if (contains(r.key)) return true;
    store_object(r.key, r.size);
    return false;
  }
  [[nodiscard]] std::uint64_t metadata_bytes() const override { return meta_; }

  std::uint64_t accesses_ = 0;
  std::vector<std::uint64_t> capacity_history_;
  void set_capacity(std::uint64_t bytes) override {
    capacity_history_.push_back(bytes);
    CacheBase::set_capacity(bytes);
  }

 private:
  std::uint64_t meta_;
};

trace::Trace repeat_trace(std::size_t n) {
  trace::Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({static_cast<double>(i), i % 10, 100});
  }
  return t;
}

TEST(Engine, CountsHitsAndBytes) {
  RecordingPolicy policy(1 << 20);
  const auto t = repeat_trace(100);  // 10 distinct keys, requested 10x each
  const auto m = simulate(policy, t);
  EXPECT_EQ(m.requests, 100u);
  EXPECT_EQ(m.hits, 90u);  // first request per key misses
  EXPECT_DOUBLE_EQ(m.object_hit_ratio(), 0.9);
  EXPECT_DOUBLE_EQ(m.bytes_requested, 100.0 * 100.0);
  EXPECT_DOUBLE_EQ(m.bytes_hit, 90.0 * 100.0);
  EXPECT_DOUBLE_EQ(m.wan_traffic_bytes(), 10.0 * 100.0);
  EXPECT_EQ(policy.accesses_, 100u);
}

TEST(Engine, WarmupExcludesEarlyRequests) {
  RecordingPolicy policy(1 << 20);
  SimOptions opts;
  opts.warmup_requests = 10;  // exactly the 10 cold misses
  const auto m = simulate(policy, repeat_trace(100), opts);
  EXPECT_EQ(m.requests, 90u);
  EXPECT_EQ(m.hits, 90u);
  EXPECT_DOUBLE_EQ(m.object_hit_ratio(), 1.0);
}

TEST(Engine, WindowSeries) {
  RecordingPolicy policy(1 << 20);
  SimOptions opts;
  opts.window_requests = 30;
  const auto m = simulate(policy, repeat_trace(100), opts);
  ASSERT_EQ(m.windows.size(), 4u);  // 30+30+30+10
  EXPECT_EQ(m.windows[0].requests, 30u);
  EXPECT_EQ(m.windows[3].requests, 10u);
  // First window contains all 10 misses.
  EXPECT_EQ(m.windows[0].hits, 20u);
  EXPECT_EQ(m.windows[1].hits, 30u);
  std::uint64_t total_hits = 0;
  for (const auto& w : m.windows) total_hits += w.hits;
  EXPECT_EQ(total_hits, m.hits);
}

TEST(Engine, MetadataDeduction) {
  RecordingPolicy policy(1'000'000, /*meta=*/250'000);
  SimOptions opts;
  opts.capacity_adjust_interval = 50;
  const auto m = simulate(policy, repeat_trace(200), opts);
  ASSERT_FALSE(policy.capacity_history_.empty());
  EXPECT_EQ(policy.capacity_history_.front(), 750'000u);
  EXPECT_EQ(m.peak_metadata_bytes, 250'000u);
}

TEST(Engine, MetadataDeductionDisabled) {
  RecordingPolicy policy(1'000'000, 250'000);
  SimOptions opts;
  opts.deduct_metadata = false;
  (void)simulate(policy, repeat_trace(200), opts);
  EXPECT_TRUE(policy.capacity_history_.empty());
}

TEST(Engine, EmptyTrace) {
  RecordingPolicy policy(100);
  const auto m = simulate(policy, trace::Trace{});
  EXPECT_EQ(m.requests, 0u);
  EXPECT_DOUBLE_EQ(m.object_hit_ratio(), 0.0);
  EXPECT_TRUE(m.windows.empty());
}

// --------------------------------------------------------- LatencyModel

TEST(LatencyModel, HitLatencyIsDistancePlusTransfer) {
  LatencyModelConfig cfg;
  cfg.link_gbps = 8.0;
  cfg.edge_rtt_s = 0.01;
  LatencyModel model(cfg);
  // 1 MB at 8 Gbps = 8e6 bits / 8e9 bps = 1 ms; plus 10 ms RTT.
  const double latency = model.latency_seconds(1'000'000, true, 0.0);
  EXPECT_NEAR(latency, 0.011, 1e-9);
}

TEST(LatencyModel, MissAddsOriginTerms) {
  LatencyModelConfig cfg;
  cfg.link_gbps = 8.0;
  cfg.edge_rtt_s = 0.01;
  cfg.origin_rtt_s = 0.06;
  cfg.origin_gbps = 2.0;
  LatencyModel model(cfg);
  const double hit = model.latency_seconds(1'000'000, true, 0.0);
  const double miss = model.latency_seconds(1'000'000, false, 0.0);
  EXPECT_NEAR(miss - hit, 0.06 + 8e6 / 2e9, 1e-9);
}

TEST(LatencyModel, AlgoTimeAddsLinearly) {
  LatencyModel model;
  const double base = model.latency_seconds(1000, true, 0.0);
  const double with_algo = model.latency_seconds(1000, true, 0.002);
  EXPECT_NEAR(with_algo - base, 0.002, 1e-12);
}

TEST(LatencyModel, ThroughputImprovesWithHits) {
  LatencyModel all_hits, all_misses;
  for (int i = 0; i < 1000; ++i) {
    all_hits.record(1'000'000, true, 0.0);
    all_misses.record(1'000'000, false, 0.0);
  }
  EXPECT_GT(all_hits.throughput_gbps(), all_misses.throughput_gbps());
  EXPECT_GT(all_misses.p99_latency_ms(), all_hits.p99_latency_ms());
}

TEST(LatencyModel, QuantilesOrdered) {
  LatencyModel model;
  for (int i = 0; i < 10'000; ++i) {
    model.record(static_cast<std::uint64_t>(1000 + i * 997 % 5'000'000), i % 3 != 0,
                 0.0);
  }
  EXPECT_LE(model.mean_latency_ms(), model.p99_latency_ms());
  EXPECT_LE(model.p90_latency_ms(), model.p99_latency_ms());
}

}  // namespace
}  // namespace lhr::sim
