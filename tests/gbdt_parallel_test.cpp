// Parallel-training determinism: Gbdt::fit must produce a byte-identical
// serialized model for every thread count (the per-chunk partial reductions
// in gbdt.cpp are ordered on data-dependent boundaries, so worker scheduling
// never reaches the arithmetic). Also covers the predict_many batch API.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "ml/gbdt.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lhr::ml {
namespace {

struct Labeled {
  Dataset x;
  std::vector<float> y;
};

/// Synthetic regression batch shaped like an LHR training window:
/// `dim` features, ~15% missing cells, target = nonlinear mix + noise.
Labeled make_batch(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Labeled out;
  out.x.n_features = dim;
  out.x.values.reserve(rows * dim);
  out.y.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t f = 0; f < dim; ++f) {
      if (rng.next_double() < 0.15) {
        out.x.values.push_back(std::numeric_limits<float>::quiet_NaN());
        continue;
      }
      const float v = static_cast<float>(rng.next_double() * 4.0 - 2.0);
      out.x.values.push_back(v);
      acc += (f % 2 == 0 ? 1.0 : -0.5) * v + 0.25 * v * v;
    }
    out.y.push_back(static_cast<float>(acc + 0.05 * rng.next_double()));
  }
  return out;
}

std::string serialized(const Gbdt& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

std::string fit_serialized(const Labeled& data, GbdtConfig cfg, std::size_t n_threads,
                           util::ThreadPool* pool = nullptr) {
  cfg.n_threads = n_threads;
  Gbdt model;
  model.fit(data.x, data.y, cfg, pool);
  EXPECT_TRUE(model.trained());
  return serialized(model);
}

GbdtConfig test_config() {
  GbdtConfig cfg;
  cfg.num_trees = 8;
  cfg.max_depth = 5;
  return cfg;
}

// ----------------------------------------------------- thread determinism

TEST(GbdtParallel, ByteIdenticalModelsAcrossThreadCountsSquared) {
  const auto data = make_batch(12'000, 8, 101);
  const auto baseline = fit_serialized(data, test_config(), 1);
  for (const std::size_t threads : {2, 4, 8}) {
    EXPECT_EQ(fit_serialized(data, test_config(), threads), baseline)
        << "n_threads=" << threads;
  }
}

TEST(GbdtParallel, ByteIdenticalModelsAcrossThreadCountsLogistic) {
  auto data = make_batch(12'000, 8, 202);
  for (std::size_t i = 0; i < data.y.size(); ++i) data.y[i] = data.y[i] > 0.0f ? 1.0f : 0.0f;
  GbdtConfig cfg = test_config();
  cfg.loss = GbdtLoss::kLogistic;
  const auto baseline = fit_serialized(data, cfg, 1);
  for (const std::size_t threads : {2, 4, 8}) {
    EXPECT_EQ(fit_serialized(data, cfg, threads), baseline) << "n_threads=" << threads;
  }
}

TEST(GbdtParallel, SharedPoolMatchesOwnedPool) {
  const auto data = make_batch(8'000, 8, 303);
  const auto baseline = fit_serialized(data, test_config(), 1);
  util::ThreadPool pool(3);
  // Same model whether the workers come from a caller-provided pool (of any
  // size) or a transient owned pool.
  EXPECT_EQ(fit_serialized(data, test_config(), 4, &pool), baseline);
  EXPECT_EQ(fit_serialized(data, test_config(), 2, &pool), baseline);
  // n_threads = 0 means "all available workers" on the given pool.
  EXPECT_EQ(fit_serialized(data, test_config(), 0, &pool), baseline);
}

TEST(GbdtParallel, RowSubsamplingStaysDeterministic) {
  const auto data = make_batch(10'000, 8, 404);
  GbdtConfig cfg = test_config();
  cfg.subsample = 0.7;  // rng-driven row selection happens on the caller
  const auto baseline = fit_serialized(data, cfg, 1);
  for (const std::size_t threads : {2, 8}) {
    EXPECT_EQ(fit_serialized(data, cfg, threads), baseline) << "n_threads=" << threads;
  }
}

TEST(GbdtParallel, EdgeSubsampledDatasetStaysDeterministic) {
  // 70k rows exceeds the 65'536-row bin-edge sample, exercising the deduped
  // with-replacement sampling path across thread counts.
  const auto data = make_batch(70'000, 4, 505);
  GbdtConfig cfg;
  cfg.num_trees = 2;
  cfg.max_depth = 3;
  const auto baseline = fit_serialized(data, cfg, 1);
  for (const std::size_t threads : {4, 8}) {
    EXPECT_EQ(fit_serialized(data, cfg, threads), baseline) << "n_threads=" << threads;
  }
}

TEST(GbdtParallel, ParallelFitPredictsIdentically) {
  const auto data = make_batch(6'000, 8, 606);
  GbdtConfig cfg = test_config();
  Gbdt seq;
  seq.fit(data.x, data.y, cfg);
  cfg.n_threads = 4;
  Gbdt par;
  par.fit(data.x, data.y, cfg);
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(seq.predict(data.x.row(i)), par.predict(data.x.row(i))) << "row " << i;
  }
}

// ------------------------------------------------------------ predict_many

TEST(GbdtParallel, PredictManyMatchesRowByRowPredict) {
  const auto data = make_batch(4'000, 8, 707);
  Gbdt model;
  model.fit(data.x, data.y, test_config());

  const auto batch = model.predict_many(data.x);
  ASSERT_EQ(batch.size(), data.x.n_rows());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i], model.predict(data.x.row(i))) << "row " << i;
  }

  std::vector<double> out(data.x.n_rows());
  model.predict_many(data.x, out);
  EXPECT_EQ(out, batch);
}

TEST(GbdtParallel, PredictManyValidatesShapes) {
  const auto data = make_batch(512, 8, 808);
  Gbdt model;
  model.fit(data.x, data.y, test_config());

  std::vector<double> short_out(data.x.n_rows() - 1);
  EXPECT_THROW(model.predict_many(data.x, short_out), std::invalid_argument);

  Dataset wrong;
  wrong.n_features = 3;
  wrong.values.assign(9, 0.5f);
  EXPECT_THROW((void)model.predict_many(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace lhr::ml
