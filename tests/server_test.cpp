#include <gtest/gtest.h>

#include <memory>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "policies/lru.hpp"
#include "policies/tinylfu.hpp"
#include "server/cdn_server.hpp"

namespace lhr::server {
namespace {

ServerConfig fast_config() {
  ServerConfig cfg;
  cfg.ram_bytes = 1 << 20;
  return cfg;
}

trace::Trace tiny_trace() {
  trace::Trace t;
  double time = 0.0;
  for (int round = 0; round < 50; ++round) {
    for (trace::Key k = 1; k <= 5; ++k) {
      t.push_back({time += 1.0, k, 100'000});
    }
  }
  return t;
}

TEST(CdnServer, HitRateMatchesExpectation) {
  CdnServer server(std::make_unique<policy::Lru>(10ULL << 20), fast_config());
  const auto report = server.replay(tiny_trace(), ReplayMode::kNormal);
  // 5 contents, 50 rounds: only the first 5 requests miss.
  EXPECT_NEAR(report.content_hit_pct, 100.0 * 245.0 / 250.0, 0.5);
  EXPECT_EQ(report.policy_name, "LRU");
}

TEST(CdnServer, ReportFieldsAreSane) {
  CdnServer server(std::make_unique<policy::Lru>(10ULL << 20), fast_config());
  const auto report = server.replay(tiny_trace(), ReplayMode::kNormal);
  EXPECT_GT(report.throughput_gbps, 0.0);
  EXPECT_GT(report.avg_latency_ms, 0.0);
  EXPECT_LE(report.p90_latency_ms, report.p99_latency_ms + 1e-9);
  EXPECT_GE(report.peak_cpu_pct, 0.0);
  EXPECT_LE(report.peak_cpu_pct, 100.0);
  EXPECT_GT(report.peak_mem_gb, 0.0);
  EXPECT_GE(report.traffic_gbps, 0.0);
}

TEST(CdnServer, MaxModeThroughputExceedsNormal) {
  // Back-to-back replay compresses the duration => higher throughput.
  CdnServer normal_server(std::make_unique<policy::Lru>(10ULL << 20), fast_config());
  CdnServer max_server(std::make_unique<policy::Lru>(10ULL << 20), fast_config());
  const auto t = tiny_trace();
  const auto normal = normal_server.replay(t, ReplayMode::kNormal);
  const auto max = max_server.replay(t, ReplayMode::kMax);
  EXPECT_GT(max.throughput_gbps, normal.throughput_gbps);
  EXPECT_GT(max.peak_cpu_pct, normal.peak_cpu_pct);
}

TEST(CdnServer, MissesGenerateWanTraffic) {
  // Cache far too small for the working set: everything misses.
  ServerConfig cfg = fast_config();
  cfg.ram_bytes = 1;  // effectively no RAM tier
  CdnServer server(std::make_unique<policy::Lru>(1), cfg);
  const auto report = server.replay(tiny_trace(), ReplayMode::kNormal);
  EXPECT_LT(report.content_hit_pct, 1.0);
  EXPECT_GT(report.traffic_gbps, 0.0);
}

TEST(CdnServer, FreshnessRevalidationRaisesLatency) {
  ServerConfig fresh = fast_config();
  fresh.freshness_ttl_s = 1e12;  // never stale
  ServerConfig stale = fast_config();
  stale.freshness_ttl_s = 0.5;   // always stale (requests are 1 s apart)
  stale.revalidate_change_prob = 0.0;

  CdnServer fresh_server(std::make_unique<policy::Lru>(10ULL << 20), fresh);
  CdnServer stale_server(std::make_unique<policy::Lru>(10ULL << 20), stale);
  const auto t = tiny_trace();
  const auto fresh_report = fresh_server.replay(t, ReplayMode::kNormal);
  const auto stale_report = stale_server.replay(t, ReplayMode::kNormal);
  EXPECT_GT(stale_report.avg_latency_ms, fresh_report.avg_latency_ms);
  // Revalidation without change keeps contents cached: hit pct unaffected.
  EXPECT_NEAR(stale_report.content_hit_pct, fresh_report.content_hit_pct, 1.0);
}

TEST(CdnServer, InMemoryModeSkipsDiskSeek) {
  ServerConfig disk = fast_config();
  ServerConfig mem = fast_config();
  mem.has_disk_tier = false;
  // Use a RAM tier too small to matter so the disk path dominates.
  disk.ram_bytes = 1;

  CdnServer disk_server(std::make_unique<policy::Lru>(10ULL << 20), disk);
  CdnServer mem_server(std::make_unique<policy::Lru>(10ULL << 20), mem);
  const auto t = tiny_trace();
  const auto d = disk_server.replay(t, ReplayMode::kNormal);
  const auto m = mem_server.replay(t, ReplayMode::kNormal);
  EXPECT_LT(m.avg_latency_ms, d.avg_latency_ms);
}

TEST(CdnServer, WindowSeriesCoversTrace) {
  CdnServer server(std::make_unique<policy::Lru>(10ULL << 20), fast_config());
  const auto report = server.replay(tiny_trace(), ReplayMode::kNormal, 100);
  ASSERT_EQ(report.window_hit_ratio.size(), 3u);  // 250 requests / 100
  // Later windows (warm cache) should hit more than the first.
  EXPECT_GT(report.window_hit_ratio.back(), 0.9);
}

TEST(CdnServer, WorksWithLhrPolicy) {
  CdnServer server(core::make_policy("LHR", 4ULL << 20), fast_config());
  const auto trace = gen::make_trace(gen::TraceClass::kCdnC, 3'000, 21);
  const auto report = server.replay(trace, ReplayMode::kNormal);
  EXPECT_EQ(report.policy_name, "LHR");
  EXPECT_GE(report.content_hit_pct, 0.0);
}

TEST(CdnServer, CaffeineStyleWTinyLfu) {
  ServerConfig cfg = fast_config();
  cfg.has_disk_tier = false;
  CdnServer server(std::make_unique<policy::WTinyLfu>(8ULL << 20), cfg);
  const auto report = server.replay(tiny_trace(), ReplayMode::kNormal);
  EXPECT_EQ(report.policy_name, "W-TinyLFU");
  EXPECT_GT(report.content_hit_pct, 50.0);
}

}  // namespace
}  // namespace lhr::server
