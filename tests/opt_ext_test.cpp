// Tests for the PFOO-U achievable schedule and the segment tree beneath it.
#include <gtest/gtest.h>

#include <vector>

#include "gen/cdn_model.hpp"
#include "opt/bounds.hpp"
#include "opt/exact_opt.hpp"
#include "util/rng.hpp"
#include "util/segment_tree.hpp"

namespace lhr {
namespace {

using trace::Request;

// ------------------------------------------------------------ SegmentTree

TEST(SegmentTree, MatchesNaiveRangeAddRangeMax) {
  util::SegmentTree<std::int64_t> tree(40);
  std::vector<std::int64_t> shadow(40, 0);
  util::Xoshiro256 rng(9);
  for (int step = 0; step < 2'000; ++step) {
    std::size_t lo = rng.next_below(40);
    std::size_t hi = rng.next_below(40);
    if (lo > hi) std::swap(lo, hi);
    if (rng.next_double() < 0.5) {
      const auto delta = static_cast<std::int64_t>(rng.next_below(100)) - 50;
      tree.range_add(lo, hi, delta);
      for (std::size_t i = lo; i <= hi; ++i) shadow[i] += delta;
    } else {
      std::int64_t expected = shadow[lo];
      for (std::size_t i = lo; i <= hi; ++i) expected = std::max(expected, shadow[i]);
      ASSERT_EQ(tree.range_max(lo, hi), expected) << "[" << lo << "," << hi << "]";
    }
  }
}

TEST(SegmentTree, GlobalMax) {
  util::SegmentTree<int> tree(8);
  tree.range_add(2, 5, 7);
  tree.range_add(4, 7, 3);
  EXPECT_EQ(tree.global_max(), 10);
  EXPECT_EQ(tree.range_max(0, 1), 0);
}

TEST(SegmentTree, SingleElement) {
  util::SegmentTree<int> tree(1);
  tree.range_add(0, 0, 5);
  EXPECT_EQ(tree.range_max(0, 0), 5);
}

// ----------------------------------------------------------------- PFOO-U

std::vector<Request> random_instance(util::Xoshiro256& rng, std::size_t n_keys,
                                     std::size_t n_requests) {
  std::vector<std::uint64_t> sizes;
  for (std::size_t k = 0; k < n_keys; ++k) sizes.push_back(1 + rng.next_below(6));
  std::vector<Request> reqs;
  for (std::size_t i = 0; i < n_requests; ++i) {
    const auto k = rng.next_below(n_keys);
    reqs.push_back({static_cast<double>(i), k, sizes[k]});
  }
  return reqs;
}

TEST(PfooU, NeverExceedsExactOpt) {
  // PFOO-U is a feasible offline schedule, so its hits lower-bound OPT.
  util::Xoshiro256 rng(77);
  for (int instance = 0; instance < 40; ++instance) {
    const auto reqs = random_instance(rng, 3 + rng.next_below(4), 16);
    const std::uint64_t capacity = 3 + rng.next_below(8);
    const auto u = opt::pfoo_u(reqs, capacity);
    const auto exact = opt::exact_opt_hits(reqs, capacity);
    ASSERT_LE(u.hits, exact) << "instance " << instance;
  }
}

TEST(PfooU, BracketsOptWithPfooL) {
  util::Xoshiro256 rng(78);
  for (int instance = 0; instance < 20; ++instance) {
    const auto reqs = random_instance(rng, 5, 18);
    const std::uint64_t capacity = 4 + rng.next_below(6);
    const auto u = opt::pfoo_u(reqs, capacity);
    const auto l = opt::pfoo_l(reqs, capacity);
    const auto exact = opt::exact_opt_hits(reqs, capacity);
    ASSERT_LE(u.hits, exact);
    ASSERT_GE(l.hits, exact);
  }
}

TEST(PfooU, TightOnUncontendedTrace) {
  // When everything fits, PFOO-U achieves every reuse.
  std::vector<Request> reqs;
  for (int i = 0; i < 100; ++i) {
    reqs.push_back({static_cast<double>(i), static_cast<trace::Key>(i % 10), 10});
  }
  const auto u = opt::pfoo_u(reqs, 1'000);
  EXPECT_EQ(u.hits, 90u);
}

TEST(PfooU, BracketIsOrderedOnRealisticTrace) {
  const auto t = gen::make_trace(gen::TraceClass::kCdnA, 20'000, 31);
  const std::uint64_t capacity = 8ULL << 30;
  const auto u = opt::pfoo_u(t.requests(), capacity);
  const auto l = opt::pfoo_l(t.requests(), capacity);
  EXPECT_LE(u.hits, l.hits);
  EXPECT_GT(u.hits, 0u);
  // The bracket should be reasonably tight (within a few percentage points).
  EXPECT_LT(l.hit_ratio() - u.hit_ratio(), 0.15);
}

TEST(PfooU, EmptyTrace) {
  const auto u = opt::pfoo_u({}, 100);
  EXPECT_EQ(u.requests, 0u);
  EXPECT_EQ(u.hits, 0u);
}

}  // namespace
}  // namespace lhr
