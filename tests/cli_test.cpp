#include <gtest/gtest.h>

#include <vector>

#include "core/cli.hpp"

namespace lhr::core {
namespace {

std::optional<CliOptions> parse(std::vector<const char*> args, std::string& error) {
  args.insert(args.begin(), "lhr_sim");
  return parse_cli(static_cast<int>(args.size()), args.data(), error);
}

TEST(Cli, Defaults) {
  std::string error;
  const auto options = parse({}, error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->policies, (std::vector<std::string>{"LRU", "LHR"}));
  EXPECT_EQ(options->capacities_gb, std::vector<double>{64.0});
  EXPECT_EQ(options->synthetic, "cdn-a");
  EXPECT_FALSE(options->csv);
}

TEST(Cli, ParsesLists) {
  std::string error;
  const auto options =
      parse({"--policy", "LRU,LHR,ARC", "--capacity-gb", "1,2.5,16"}, error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->policies.size(), 3u);
  EXPECT_EQ(options->policies[2], "ARC");
  ASSERT_EQ(options->capacities_gb.size(), 3u);
  EXPECT_DOUBLE_EQ(options->capacities_gb[1], 2.5);
}

TEST(Cli, HelpSignalsEmptyPolicies) {
  std::string error;
  const auto options = parse({"--help"}, error);
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->policies.empty());
  EXPECT_FALSE(cli_usage().empty());
}

TEST(Cli, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(parse({"--bogus"}, error).has_value());
  EXPECT_FALSE(parse({"--policy"}, error).has_value());        // missing value
  EXPECT_FALSE(parse({"--capacity-gb", "abc"}, error).has_value());
  EXPECT_FALSE(parse({"--capacity-gb", "-4"}, error).has_value());
  EXPECT_FALSE(parse({"--requests", "0"}, error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Cli, RunsSyntheticMatrix) {
  CliOptions options;
  options.policies = {"LRU", "B-LRU"};
  options.capacities_gb = {1.0, 4.0};
  options.synthetic = "wiki";
  options.requests = 5'000;
  const auto results = run_cli(options);
  ASSERT_EQ(results.size(), 4u);  // 2 policies x 2 capacities
  for (const auto& r : results) {
    EXPECT_EQ(r.metrics.requests, 5'000u);
  }
  // Bigger cache never hurts LRU.
  EXPECT_GE(results[1].metrics.object_hit_ratio(),
            results[0].metrics.object_hit_ratio());
}

TEST(Cli, UnknownPolicyThrows) {
  CliOptions options;
  options.policies = {"NoSuchPolicy"};
  options.capacities_gb = {1.0};
  options.synthetic = "cdn-a";
  options.requests = 1'000;
  EXPECT_THROW((void)run_cli(options), std::invalid_argument);
}

TEST(Cli, UnknownSyntheticThrows) {
  CliOptions options;
  options.policies = {"LRU"};
  options.capacities_gb = {1.0};
  options.synthetic = "martian";
  EXPECT_THROW((void)run_cli(options), std::invalid_argument);
}

TEST(Cli, ParsesServeThreads) {
  std::string error;
  const auto options = parse({"--serve-threads", "4"}, error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->serve_threads, 4u);
  EXPECT_EQ(parse({}, error)->serve_threads, 0u);  // default: classic path
  EXPECT_NE(cli_usage().find("--serve-threads"), std::string::npos);
}

TEST(Cli, RejectsBadServeThreads) {
  std::string error;
  EXPECT_FALSE(parse({"--serve-threads"}, error).has_value());  // missing value
  EXPECT_FALSE(parse({"--serve-threads", "0"}, error).has_value());
  EXPECT_FALSE(parse({"--serve-threads", "abc"}, error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Cli, ParsesOriginProfileAndFaultSchedule) {
  std::string error;
  const auto options = parse({"--serve-threads", "2", "--origin-profile",
                              "lognormal:sigma=0.5,timeout=0.25", "--fault-schedule",
                              "outage:100-160;error:200-400@0.5"},
                             error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->origin_profile, "lognormal:sigma=0.5,timeout=0.25");
  EXPECT_EQ(options->fault_schedule, "outage:100-160;error:200-400@0.5");
  EXPECT_TRUE(parse({}, error)->origin_profile.empty());  // default: infallible
  EXPECT_NE(cli_usage().find("--origin-profile"), std::string::npos);
  EXPECT_NE(cli_usage().find("--fault-schedule"), std::string::npos);
}

TEST(Cli, ResilienceFlagsRequireServeThreads) {
  std::string error;
  EXPECT_FALSE(parse({"--origin-profile", "fixed"}, error).has_value());
  EXPECT_NE(error.find("--serve-threads"), std::string::npos);
  EXPECT_FALSE(parse({"--fault-schedule", "outage:0-1"}, error).has_value());
}

TEST(Cli, RejectsMalformedResilienceSpecs) {
  std::string error;
  EXPECT_FALSE(parse({"--serve-threads", "2", "--origin-profile", "pareto"}, error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse({"--serve-threads", "2", "--fault-schedule", "meteor:0-1"}, error)
                   .has_value());
  EXPECT_FALSE(parse({"--serve-threads", "2", "--fault-schedule", "outage:9-3"}, error)
                   .has_value());
}

TEST(Cli, FaultInjectedServeRunServesStaleAndFails) {
  CliOptions options;
  options.policies = {"LRU"};
  options.capacities_gb = {0.05};
  options.synthetic = "cdn-a";
  options.requests = 5'000;
  options.serve_threads = 2;
  options.origin_profile = "fixed:retries=1,grace=1e9";
  options.fault_schedule = "outage:0-1e12";  // origin is down for the whole trace
  const auto results = run_cli(options);
  ASSERT_EQ(results.size(), 1u);
  // Every miss fails (nothing cached to degrade to), so hit == served bytes.
  EXPECT_LT(results[0].metrics.hits, results[0].metrics.requests);
}

TEST(Cli, ServeThreadsRunIsDeterministicAcrossThreadCounts) {
  CliOptions options;
  options.policies = {"LRU"};
  options.capacities_gb = {0.05};
  options.synthetic = "cdn-a";
  options.requests = 5'000;
  options.serve_threads = 1;
  const auto one = run_cli(options);
  options.serve_threads = 2;
  const auto two = run_cli(options);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(one[0].metrics.requests, 5'000u);
  // Shard-ownership partitioning: aggregates are thread-count-invariant.
  EXPECT_EQ(one[0].metrics.hits, two[0].metrics.hits);
  EXPECT_EQ(one[0].metrics.bytes_hit, two[0].metrics.bytes_hit);
  EXPECT_LE(one[0].metrics.hits, one[0].metrics.requests);
}

TEST(Cli, NumericErrorsNameFlagAndToken) {
  // Every numeric flag goes through checked parsing: garbage must be
  // rejected (not silently read as 0 by atoll) with an error naming the
  // flag and the offending token.
  const struct {
    const char* flag;
    const char* token;
  } cases[] = {
      {"--requests", "many"},      {"--seed", "0x2a"},
      {"--warmup", "12.5"},        {"--train-threads", "two"},
      {"--serve-threads", "4x"},   {"--capacity-gb", "12parsecs"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(parse({c.flag, c.token}, error).has_value()) << c.flag;
    EXPECT_NE(error.find(c.flag), std::string::npos) << error;
    EXPECT_NE(error.find(c.token), std::string::npos) << error;
  }
  // Previously-accepted-by-atoll garbage like "--seed banana" (=> 0) must
  // now be an error, while real values still parse.
  std::string error;
  const auto ok = parse({"--seed", "123", "--warmup", "0"}, error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->seed, 123u);
  EXPECT_EQ(ok->warmup, 0u);
}

TEST(Cli, ParsesFabricSpec) {
  std::string error;
  const auto options = parse(
      {"--fabric", "edge=4xLHR@1;regional=2xLRU@8;shards=16;link-rtt-ms=4"}, error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->fabric, "edge=4xLHR@1;regional=2xLRU@8;shards=16;link-rtt-ms=4");
  EXPECT_NE(cli_usage().find("--fabric"), std::string::npos);

  // --origin-profile / --fault-schedule are valid with --fabric alone.
  EXPECT_TRUE(parse({"--fabric", "edge=2xLRU", "--origin-profile", "fixed",
                     "--fault-schedule", "outage:0-1"},
                    error)
                  .has_value())
      << error;
}

TEST(Cli, RejectsMalformedFabricSpec) {
  std::string error;
  // Bad count token.
  EXPECT_FALSE(parse({"--fabric", "edge=fourxLRU"}, error).has_value());
  EXPECT_NE(error.find("four"), std::string::npos) << error;
  // Clause without key=value shape.
  EXPECT_FALSE(parse({"--fabric", "edge:4xLRU"}, error).has_value());
  // Unknown clause key.
  EXPECT_FALSE(parse({"--fabric", "edge=2xLRU;warp=9"}, error).has_value());
  // Zero edge nodes.
  EXPECT_FALSE(parse({"--fabric", "edge=0"}, error).has_value());
  // Unknown tier policy is a parse-time error, not a mid-run throw.
  EXPECT_FALSE(parse({"--fabric", "edge=2xNoSuchPolicy"}, error).has_value());
  EXPECT_NE(error.find("NoSuchPolicy"), std::string::npos) << error;
  // Non-positive capacity.
  EXPECT_FALSE(parse({"--fabric", "edge=2xLRU@-1"}, error).has_value());
}

TEST(Cli, RunFabricReplaysAndConservesTraffic) {
  CliOptions options;
  options.fabric = "edge=3xLRU@0.05;regional=2xLRU@0.2;shards=8";
  options.synthetic = "cdn-a";
  options.requests = 5'000;
  options.serve_threads = 2;
  const auto report = run_fabric(options);
  EXPECT_EQ(report.requests, 5'000u);
  EXPECT_EQ(report.edge.nodes, 3u);
  EXPECT_EQ(report.regional.nodes, 2u);
  EXPECT_TRUE(report.traffic_conserved()) << report.conservation_error;
  const auto text = format_fabric_report(report);
  EXPECT_NE(text.find("edge"), std::string::npos);
  EXPECT_NE(text.find("conservation: ok"), std::string::npos);
}

TEST(Cli, CsvFormatHasHeaderAndRows) {
  CliOptions options;
  options.policies = {"LRU"};
  options.capacities_gb = {1.0};
  options.synthetic = "cdn-c";
  options.requests = 2'000;
  const auto results = run_cli(options);
  const auto csv = format_results(results, true);
  EXPECT_NE(csv.find("policy,capacity_gb"), std::string::npos);
  EXPECT_NE(csv.find("LRU,1"), std::string::npos);
  // One header + one row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);

  const auto table = format_results(results, false);
  EXPECT_NE(table.find("hit(%)"), std::string::npos);
}

}  // namespace
}  // namespace lhr::core
