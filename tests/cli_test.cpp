#include <gtest/gtest.h>

#include <vector>

#include "core/cli.hpp"

namespace lhr::core {
namespace {

std::optional<CliOptions> parse(std::vector<const char*> args, std::string& error) {
  args.insert(args.begin(), "lhr_sim");
  return parse_cli(static_cast<int>(args.size()), args.data(), error);
}

TEST(Cli, Defaults) {
  std::string error;
  const auto options = parse({}, error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->policies, (std::vector<std::string>{"LRU", "LHR"}));
  EXPECT_EQ(options->capacities_gb, std::vector<double>{64.0});
  EXPECT_EQ(options->synthetic, "cdn-a");
  EXPECT_FALSE(options->csv);
}

TEST(Cli, ParsesLists) {
  std::string error;
  const auto options =
      parse({"--policy", "LRU,LHR,ARC", "--capacity-gb", "1,2.5,16"}, error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->policies.size(), 3u);
  EXPECT_EQ(options->policies[2], "ARC");
  ASSERT_EQ(options->capacities_gb.size(), 3u);
  EXPECT_DOUBLE_EQ(options->capacities_gb[1], 2.5);
}

TEST(Cli, HelpSignalsEmptyPolicies) {
  std::string error;
  const auto options = parse({"--help"}, error);
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->policies.empty());
  EXPECT_FALSE(cli_usage().empty());
}

TEST(Cli, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(parse({"--bogus"}, error).has_value());
  EXPECT_FALSE(parse({"--policy"}, error).has_value());        // missing value
  EXPECT_FALSE(parse({"--capacity-gb", "abc"}, error).has_value());
  EXPECT_FALSE(parse({"--capacity-gb", "-4"}, error).has_value());
  EXPECT_FALSE(parse({"--requests", "0"}, error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Cli, RunsSyntheticMatrix) {
  CliOptions options;
  options.policies = {"LRU", "B-LRU"};
  options.capacities_gb = {1.0, 4.0};
  options.synthetic = "wiki";
  options.requests = 5'000;
  const auto results = run_cli(options);
  ASSERT_EQ(results.size(), 4u);  // 2 policies x 2 capacities
  for (const auto& r : results) {
    EXPECT_EQ(r.metrics.requests, 5'000u);
  }
  // Bigger cache never hurts LRU.
  EXPECT_GE(results[1].metrics.object_hit_ratio(),
            results[0].metrics.object_hit_ratio());
}

TEST(Cli, UnknownPolicyThrows) {
  CliOptions options;
  options.policies = {"NoSuchPolicy"};
  options.capacities_gb = {1.0};
  options.synthetic = "cdn-a";
  options.requests = 1'000;
  EXPECT_THROW((void)run_cli(options), std::invalid_argument);
}

TEST(Cli, UnknownSyntheticThrows) {
  CliOptions options;
  options.policies = {"LRU"};
  options.capacities_gb = {1.0};
  options.synthetic = "martian";
  EXPECT_THROW((void)run_cli(options), std::invalid_argument);
}

TEST(Cli, ParsesServeThreads) {
  std::string error;
  const auto options = parse({"--serve-threads", "4"}, error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->serve_threads, 4u);
  EXPECT_EQ(parse({}, error)->serve_threads, 0u);  // default: classic path
  EXPECT_NE(cli_usage().find("--serve-threads"), std::string::npos);
}

TEST(Cli, RejectsBadServeThreads) {
  std::string error;
  EXPECT_FALSE(parse({"--serve-threads"}, error).has_value());  // missing value
  EXPECT_FALSE(parse({"--serve-threads", "0"}, error).has_value());
  EXPECT_FALSE(parse({"--serve-threads", "abc"}, error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Cli, ParsesOriginProfileAndFaultSchedule) {
  std::string error;
  const auto options = parse({"--serve-threads", "2", "--origin-profile",
                              "lognormal:sigma=0.5,timeout=0.25", "--fault-schedule",
                              "outage:100-160;error:200-400@0.5"},
                             error);
  ASSERT_TRUE(options.has_value()) << error;
  EXPECT_EQ(options->origin_profile, "lognormal:sigma=0.5,timeout=0.25");
  EXPECT_EQ(options->fault_schedule, "outage:100-160;error:200-400@0.5");
  EXPECT_TRUE(parse({}, error)->origin_profile.empty());  // default: infallible
  EXPECT_NE(cli_usage().find("--origin-profile"), std::string::npos);
  EXPECT_NE(cli_usage().find("--fault-schedule"), std::string::npos);
}

TEST(Cli, ResilienceFlagsRequireServeThreads) {
  std::string error;
  EXPECT_FALSE(parse({"--origin-profile", "fixed"}, error).has_value());
  EXPECT_NE(error.find("--serve-threads"), std::string::npos);
  EXPECT_FALSE(parse({"--fault-schedule", "outage:0-1"}, error).has_value());
}

TEST(Cli, RejectsMalformedResilienceSpecs) {
  std::string error;
  EXPECT_FALSE(parse({"--serve-threads", "2", "--origin-profile", "pareto"}, error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse({"--serve-threads", "2", "--fault-schedule", "meteor:0-1"}, error)
                   .has_value());
  EXPECT_FALSE(parse({"--serve-threads", "2", "--fault-schedule", "outage:9-3"}, error)
                   .has_value());
}

TEST(Cli, FaultInjectedServeRunServesStaleAndFails) {
  CliOptions options;
  options.policies = {"LRU"};
  options.capacities_gb = {0.05};
  options.synthetic = "cdn-a";
  options.requests = 5'000;
  options.serve_threads = 2;
  options.origin_profile = "fixed:retries=1,grace=1e9";
  options.fault_schedule = "outage:0-1e12";  // origin is down for the whole trace
  const auto results = run_cli(options);
  ASSERT_EQ(results.size(), 1u);
  // Every miss fails (nothing cached to degrade to), so hit == served bytes.
  EXPECT_LT(results[0].metrics.hits, results[0].metrics.requests);
}

TEST(Cli, ServeThreadsRunIsDeterministicAcrossThreadCounts) {
  CliOptions options;
  options.policies = {"LRU"};
  options.capacities_gb = {0.05};
  options.synthetic = "cdn-a";
  options.requests = 5'000;
  options.serve_threads = 1;
  const auto one = run_cli(options);
  options.serve_threads = 2;
  const auto two = run_cli(options);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(one[0].metrics.requests, 5'000u);
  // Shard-ownership partitioning: aggregates are thread-count-invariant.
  EXPECT_EQ(one[0].metrics.hits, two[0].metrics.hits);
  EXPECT_EQ(one[0].metrics.bytes_hit, two[0].metrics.bytes_hit);
  EXPECT_LE(one[0].metrics.hits, one[0].metrics.requests);
}

TEST(Cli, CsvFormatHasHeaderAndRows) {
  CliOptions options;
  options.policies = {"LRU"};
  options.capacities_gb = {1.0};
  options.synthetic = "cdn-c";
  options.requests = 2'000;
  const auto results = run_cli(options);
  const auto csv = format_results(results, true);
  EXPECT_NE(csv.find("policy,capacity_gb"), std::string::npos);
  EXPECT_NE(csv.find("LRU,1"), std::string::npos);
  // One header + one row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);

  const auto table = format_results(results, false);
  EXPECT_NE(table.find("hit(%)"), std::string::npos);
}

}  // namespace
}  // namespace lhr::core
