#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "gen/zipf.hpp"
#include "opt/bounds.hpp"
#include "policies/adaptsize.hpp"
#include "policies/b_lru.hpp"
#include "policies/gdsf.hpp"
#include "policies/hawkeye.hpp"
#include "policies/lfu_da.hpp"
#include "policies/lrb.hpp"
#include "policies/lru.hpp"
#include "policies/lru_k.hpp"
#include "policies/sampled_set.hpp"
#include "policies/tinylfu.hpp"
#include "policy_conformance.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace lhr::testing {

// Every policy the factory can build must satisfy the shared conformance
// suite (capacity invariant, determinism, dominated by infinite cap).
std::vector<ConformanceCase> factory_cases() {
  std::vector<ConformanceCase> cases;
  for (const auto& name : core::all_policy_names()) {
    cases.push_back({name, [name] { return core::make_policy(name, 2ULL << 30); }});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyConformance,
                         ::testing::ValuesIn(factory_cases()), conformance_name);

}  // namespace lhr::testing

namespace lhr::policy {
namespace {

using trace::Request;

// ------------------------------------------------------------ SampledSet

TEST(SampledKeySet, InsertEraseSample) {
  SampledKeySet set;
  for (trace::Key k = 0; k < 10; ++k) set.insert(k);
  EXPECT_EQ(set.size(), 10u);
  set.insert(5);  // duplicate ignored
  EXPECT_EQ(set.size(), 10u);
  set.erase(5);
  EXPECT_FALSE(set.contains(5));
  set.erase(5);  // idempotent
  EXPECT_EQ(set.size(), 9u);

  util::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(set.contains(set.sample(rng)));
}

// ------------------------------------------------------------------- LRU

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  Lru lru(300);
  lru.access({1.0, 1, 100});
  lru.access({2.0, 2, 100});
  lru.access({3.0, 3, 100});
  lru.access({4.0, 1, 100});   // touch 1: order is now 1,3,2
  lru.access({5.0, 4, 100});   // evicts 2
  EXPECT_TRUE(lru.access({6.0, 1, 100}));
  EXPECT_TRUE(lru.access({7.0, 3, 100}));
  EXPECT_FALSE(lru.access({8.0, 2, 100}));  // 2 was evicted
}

TEST(LruPolicy, OversizedObjectsBypass) {
  Lru lru(100);
  EXPECT_FALSE(lru.access({1.0, 1, 500}));
  EXPECT_FALSE(lru.access({2.0, 1, 500}));  // still a miss, never cached
  EXPECT_EQ(lru.used_bytes(), 0u);
}

TEST(LruPolicy, CapacityShrinkEvicts) {
  Lru lru(300);
  for (trace::Key k = 1; k <= 3; ++k) lru.access({static_cast<double>(k), k, 100});
  lru.set_capacity(100);
  lru.access({10.0, 9, 100});  // forces eviction down to the new capacity
  EXPECT_LE(lru.used_bytes(), 100u);
}

// ----------------------------------------------------------------- LRU-K

TEST(LruKPolicy, NameReflectsK) {
  EXPECT_EQ(LruK(1000, 4).name(), "LRU-4");
  EXPECT_EQ(LruK(1000, 2).name(), "LRU-2");
}

TEST(LruKPolicy, PrefersEvictingSingleReferenceObjects) {
  LruK lruk(300, 2, 1000 /*sample >= population: exact scan*/);
  // Build up: key 1 referenced 3 times (has 2-history), keys 2,3 once.
  lruk.access({1.0, 1, 100});
  lruk.access({2.0, 1, 100});
  lruk.access({3.0, 1, 100});
  lruk.access({4.0, 2, 100});
  lruk.access({5.0, 3, 100});
  lruk.access({6.0, 4, 100});  // must evict 2 (oldest with < K refs), not 1
  EXPECT_TRUE(lruk.access({7.0, 1, 100}));
  EXPECT_FALSE(lruk.access({8.0, 2, 100}));
}

// ---------------------------------------------------------------- LFU-DA

TEST(LfuDaPolicy, KeepsFrequentObjects) {
  LfuDa lfu(300);
  for (int i = 0; i < 10; ++i) lfu.access({i * 1.0, 1, 100});  // hot
  lfu.access({20.0, 2, 100});
  lfu.access({21.0, 3, 100});
  lfu.access({22.0, 4, 100});  // cache full: must evict 2 or 3, never 1
  EXPECT_TRUE(lfu.access({23.0, 1, 100}));
}

TEST(LfuDaPolicy, AgingAllowsNewContentEventually) {
  LfuDa lfu(200);
  for (int i = 0; i < 50; ++i) lfu.access({i * 1.0, 1, 100});  // very hot once
  // New contents keep arriving; dynamic aging must let them displace key 1's
  // stale priority after enough evictions.
  bool key1_evicted = false;
  for (trace::Key k = 10; k < 200; ++k) {
    lfu.access({100.0 + static_cast<double>(k), k, 100});
    lfu.access({100.5 + static_cast<double>(k), k, 100});
    lfu.access({100.7 + static_cast<double>(k), k, 100});
  }
  key1_evicted = !lfu.access({1000.0, 1, 100});
  EXPECT_TRUE(key1_evicted);
}

// ------------------------------------------------------------------ GDSF

TEST(GdsfPolicy, PrefersEvictingLargeObjects) {
  Gdsf gdsf(1000);
  gdsf.access({1.0, 1, 800});  // big
  gdsf.access({2.0, 2, 100});  // small
  gdsf.access({3.0, 3, 900});  // needs 900 free: evicts the big one first
  EXPECT_TRUE(gdsf.access({4.0, 2, 100}));
  EXPECT_FALSE(gdsf.access({5.0, 1, 800}));
}

// ------------------------------------------------------------- AdaptSize

TEST(AdaptSizePolicy, AdmitsSmallObjectsPreferentially) {
  AdaptSizeConfig cfg;
  AdaptSize as(1'000'000, cfg);
  util::Xoshiro256 rng(1);
  // c starts at capacity/10 = 100'000.
  int small_admitted = 0, huge_admitted = 0;
  for (int i = 0; i < 200; ++i) {
    AdaptSize fresh(1'000'000, cfg);
    fresh.access({1.0, 1, 1'000});
    small_admitted += fresh.used_bytes() > 0;
    AdaptSize fresh2(1'000'000, cfg);
    fresh2.access({1.0, 2, 900'000});
    huge_admitted += fresh2.used_bytes() > 0;
  }
  EXPECT_GT(small_admitted, 190);
  EXPECT_LT(huge_admitted, 10);
}

TEST(AdaptSizePolicy, TunesThresholdFromWorkload) {
  AdaptSizeConfig cfg;
  cfg.reconfigure_interval = 5'000;
  AdaptSize as(100'000, cfg);
  const double c0 = as.threshold_c();
  // Workload of hot small objects + one-hit large objects: the model should
  // pick a c below the initial capacity/10.
  util::Xoshiro256 rng(2);
  gen::ZipfSampler zipf(50, 1.0);
  for (int i = 0; i < 12'000; ++i) {
    if (i % 3 == 0) {
      as.access({i * 1.0, 100'000 + static_cast<trace::Key>(i), 50'000});  // 1-hit big
    } else {
      as.access({i * 1.0, zipf.sample(rng), 500});
    }
  }
  EXPECT_NE(as.threshold_c(), c0);  // reconfiguration actually ran
}

// ----------------------------------------------------------------- B-LRU

TEST(BLruPolicy, RejectsFirstOccurrence) {
  BLru blru(1000);
  blru.access({1.0, 1, 100});
  EXPECT_EQ(blru.used_bytes(), 0u);   // not admitted on first sight
  blru.access({2.0, 1, 100});         // second occurrence: admitted
  EXPECT_EQ(blru.used_bytes(), 100u);
  EXPECT_TRUE(blru.access({3.0, 1, 100}));
}

TEST(BLruPolicy, ShieldsAgainstOneHitWonders) {
  BLru blru(10'000);
  Lru lru(10'000);
  // Stream of unique objects + one hot object.
  util::Xoshiro256 rng(3);
  std::uint64_t blru_hot_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    blru.access({i * 1.0, 1'000'000 + static_cast<trace::Key>(i), 200});
    lru.access({i * 1.0, 1'000'000 + static_cast<trace::Key>(i), 200});
    if (i % 5 == 0) {
      blru_hot_hits += blru.access({i * 1.0 + 0.5, 7, 200});
      lru.access({i * 1.0 + 0.5, 7, 200});
    }
  }
  // One-hit wonders never occupy B-LRU space.
  EXPECT_LT(blru.object_count(), 10u);
  EXPECT_GT(blru_hot_hits, 300u);
}

// --------------------------------------------------------------- TinyLFU

TEST(TinyLfuPolicy, FrequencyDuelProtectsHotVictims) {
  TinyLfu tiny(200);
  // Make key 1 very frequent.
  for (int i = 0; i < 10; ++i) tiny.access({i * 1.0, 1, 200});
  // A cold newcomer must lose the duel and be bypassed.
  tiny.access({20.0, 2, 200});
  EXPECT_TRUE(tiny.access({21.0, 1, 200}));
  EXPECT_FALSE(tiny.access({22.0, 2, 200}));
}

TEST(TinyLfuPolicy, FrequentNewcomerDisplacesColdResident) {
  TinyLfu tiny(200);
  tiny.access({1.0, 1, 200});  // resident, frequency 1
  // Key 2 becomes more frequent than key 1 (requests are counted even
  // while it is not resident).
  for (int i = 0; i < 8; ++i) tiny.access({2.0 + i, 2, 200});
  EXPECT_TRUE(tiny.access({20.0, 2, 200}));  // eventually admitted and hit
}

TEST(WTinyLfuPolicy, PromotionThroughSegments) {
  WTinyLfuConfig cfg;
  cfg.window_fraction = 0.1;
  WTinyLfu w(10'000, cfg);
  // New object enters the window.
  w.access({1.0, 1, 500});
  EXPECT_EQ(w.used_bytes(), 500u);
  // Re-requests keep it alive and eventually promoted via probation.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(w.access({2.0 + i, 1, 500}));
  }
  // Push enough distinct objects through the window to overflow it.
  for (trace::Key k = 100; k < 130; ++k) {
    w.access({50.0 + static_cast<double>(k), k, 500});
  }
  // The hot object must still be resident.
  EXPECT_TRUE(w.access({200.0, 1, 500}));
}

TEST(WTinyLfuPolicy, CapacityInvariantUnderChurn) {
  WTinyLfu w(20'000);
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 20'000; ++i) {
    w.access({i * 1.0, rng.next_below(500), 100 + rng.next_below(900)});
    ASSERT_LE(w.used_bytes(), 20'000u);
  }
}

// --------------------------------------------------------------- Hawkeye

TEST(HawkeyePolicy, LearnsFriendlyContents) {
  HawkeyeConfig cfg;
  cfg.bucket_requests = 16;
  Hawkeye hk(10'000, cfg);
  // Content 1 re-referenced at short intervals with ample capacity: OPTgen
  // labels it friendly, so it stays admitted and hits.
  std::uint64_t hits = 0;
  for (int i = 0; i < 400; ++i) {
    hits += hk.access({i * 1.0, 1, 100});
  }
  EXPECT_TRUE(hk.predicts_friendly(1));
  EXPECT_GT(hits, 350u);
}

TEST(HawkeyePolicy, DetrainsThrashingContents) {
  HawkeyeConfig cfg;
  cfg.bucket_requests = 4;
  cfg.max_buckets = 64;
  Hawkeye hk(1'000, cfg);
  // 50 contents of 500 bytes cycling: reuse intervals never fit capacity 2
  // objects => OPTgen labels everything unfriendly.
  for (int round = 0; round < 40; ++round) {
    for (trace::Key k = 0; k < 50; ++k) {
      hk.access({round * 100.0 + static_cast<double>(k), k, 500});
    }
  }
  int friendly = 0;
  for (trace::Key k = 0; k < 50; ++k) friendly += hk.predicts_friendly(k);
  EXPECT_LT(friendly, 25);
}

// ------------------------------------------------------------------- LRB

TEST(LrbPolicy, TrainsAndKeepsCapacityInvariant) {
  LrbConfig cfg;
  cfg.memory_window = 4'096;
  cfg.train_interval = 2'000;
  cfg.max_train_samples = 2'000;
  cfg.gbdt.num_trees = 5;
  Lrb lrb(50'000, cfg);
  gen::ZipfSampler zipf(300, 1.0);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 20'000; ++i) {
    lrb.access({i * 1.0, zipf.sample(rng), 100 + (zipf.sample(rng) % 7) * 100});
    ASSERT_LE(lrb.used_bytes(), 50'000u);
  }
  EXPECT_TRUE(lrb.model_trained());
  EXPECT_GT(lrb.trainings(), 0u);
  EXPECT_GT(lrb.training_seconds(), 0.0);
  EXPECT_GT(lrb.metadata_bytes(), 0u);
}

// The cross-policy property suite lives in policy_conformance.hpp and is
// instantiated above (namespace lhr::testing) for every factory policy;
// server_ext_test instantiates the same suite for ShardedCache.

// --------------------------------------------------------------- Factory

TEST(PolicyFactory, UnknownNameThrows) {
  EXPECT_THROW(core::make_policy("NoSuchPolicy", 100), std::invalid_argument);
}

TEST(PolicyFactory, NamesRoundTrip) {
  for (const auto& name : core::all_policy_names()) {
    const auto policy = core::make_policy(name, 1 << 20);
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyFactory, SotaListIsSevenAlgorithms) {
  EXPECT_EQ(core::sota_policy_names().size(), 7u);
}

}  // namespace
}  // namespace lhr::policy
