// server::ControlPlane — spec parsing, the promote/rollback state machine,
// RobustGuard hysteresis, autotune epochs, and the end-to-end determinism
// contract: a ShardedCache of LHR cells behind a CdnServer must report
// byte-identical control-plane counters at any replay worker count.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/lhr_cache.hpp"
#include "gen/cdn_model.hpp"
#include "gen/drift.hpp"
#include "server/cdn_server.hpp"
#include "server/control_plane.hpp"
#include "server/sharded_cache.hpp"

namespace lhr::server {
namespace {

// ----------------------------------------------------------------- parse

TEST(ParseControlPlane, OnOffAndDefaults) {
  EXPECT_FALSE(ControlPlaneConfig{}.enabled);
  EXPECT_TRUE(parse_control_plane("on").enabled);
  EXPECT_FALSE(parse_control_plane("off").enabled);
}

TEST(ParseControlPlane, KeyValueSpec) {
  const ControlPlaneConfig cfg =
      parse_control_plane("sample=0.5,window=512,agree=0.9,div=0.1,p99=2.5");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.sample_fraction, 0.5);
  EXPECT_EQ(cfg.window, 512u);
  EXPECT_DOUBLE_EQ(cfg.min_agreement, 0.9);
  EXPECT_DOUBLE_EQ(cfg.max_divergence, 0.1);
  EXPECT_TRUE(cfg.autotune);
  EXPECT_DOUBLE_EQ(cfg.p99_budget_ms, 2.5);
}

TEST(ParseControlPlane, MalformedSpecsThrow) {
  const auto parse = [](const char* spec) { (void)parse_control_plane(spec); };
  EXPECT_THROW(parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse("sample"), std::invalid_argument);
  EXPECT_THROW(parse("sample=nope"), std::invalid_argument);
  EXPECT_THROW(parse("sample=1.5"), std::invalid_argument);
  // Hysteresis must be a band: rearm below the engage threshold.
  EXPECT_THROW(parse("guard=0.2,rearm=0.3"), std::invalid_argument);
}

// ------------------------------------------------- promote/rollback FSM

ControlPlaneConfig fsm_config() {
  ControlPlaneConfig cfg;
  cfg.enabled = true;
  cfg.sample_fraction = 1.0;
  cfg.window = 8;
  cfg.min_agreement = 0.85;
  cfg.max_divergence = 0.20;
  cfg.robust_guard = false;
  return cfg;
}

std::shared_ptr<const ml::CompiledModel> dummy_model() {
  return std::make_shared<const ml::CompiledModel>(ml::Gbdt{});
}

TEST(ControlPlaneFsm, AgreeingCandidatePromotes) {
  ControlPlane cp(fsm_config());
  cp.stage(dummy_model());
  ControlPlane::Verdict verdict = ControlPlane::Verdict::kNone;
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(verdict, ControlPlane::Verdict::kNone);
    verdict = cp.record_shadow(0.9, 0.88, true, true, false, false, false);
  }
  EXPECT_EQ(verdict, ControlPlane::Verdict::kPromote);
  EXPECT_EQ(cp.counters().promotions, 1u);
  EXPECT_EQ(cp.counters().rollbacks, 0u);
  EXPECT_NE(cp.take_candidate(), nullptr);
  EXPECT_FALSE(cp.has_candidate());
}

TEST(ControlPlaneFsm, DisagreeingCandidateRollsBack) {
  ControlPlane cp(fsm_config());
  cp.stage(dummy_model());
  ControlPlane::Verdict verdict = ControlPlane::Verdict::kNone;
  for (std::size_t i = 0; i < 8; ++i) {
    verdict = cp.record_shadow(0.9, 0.1, true, false, false, false, false);
  }
  EXPECT_EQ(verdict, ControlPlane::Verdict::kRollback);
  EXPECT_EQ(cp.counters().rollbacks, 1u);
  EXPECT_EQ(cp.counters().promotions, 0u);
  EXPECT_FALSE(cp.has_candidate());  // rejected candidate is dropped
}

TEST(ControlPlaneFsm, ScoreDivergenceAloneRollsBack) {
  // Same admission side everywhere, but mean |Δp| = 0.5 > max_divergence.
  ControlPlane cp(fsm_config());
  cp.stage(dummy_model());
  ControlPlane::Verdict verdict = ControlPlane::Verdict::kNone;
  for (std::size_t i = 0; i < 8; ++i) {
    verdict = cp.record_shadow(0.95, 0.45, false, false, false, false, false);
  }
  EXPECT_EQ(verdict, ControlPlane::Verdict::kRollback);
}

TEST(ControlPlaneFsm, RestagingDisplacesUnevaluatedCandidate) {
  ControlPlane cp(fsm_config());
  cp.stage(dummy_model());
  cp.stage(dummy_model());
  EXPECT_EQ(cp.counters().candidates_staged, 2u);
  EXPECT_EQ(cp.counters().candidates_displaced, 1u);
}

TEST(ControlPlaneFsm, SamplingStreamIsDeterministic) {
  ControlPlaneConfig cfg = fsm_config();
  cfg.sample_fraction = 0.5;
  ControlPlane a(cfg);
  ControlPlane b(cfg);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(a.sample_shadow(), b.sample_shadow()) << "draw " << i;
  }
}

// ----------------------------------------------------------- RobustGuard

TEST(RobustGuard, EngageDisengageHysteresis) {
  ControlPlaneConfig cfg;
  cfg.enabled = true;
  cfg.guard_window = 16;
  cfg.guard_divergence = 0.5;
  cfg.guard_rearm = 0.2;
  ControlPlane cp(cfg);

  for (std::size_t i = 0; i < 16; ++i) cp.record_drift(0.8);
  EXPECT_TRUE(cp.guard_engaged());
  EXPECT_EQ(cp.counters().guard_engagements, 1u);

  // Inside the hysteresis band: stays engaged.
  for (std::size_t i = 0; i < 16; ++i) cp.record_drift(0.3);
  EXPECT_TRUE(cp.guard_engaged());
  EXPECT_EQ(cp.counters().guard_disengagements, 0u);

  for (std::size_t i = 0; i < 16; ++i) cp.record_drift(0.05);
  EXPECT_FALSE(cp.guard_engaged());
  EXPECT_EQ(cp.counters().guard_disengagements, 1u);
}

// -------------------------------------------------------------- autotune

TEST(Autotune, OverBudgetRaisesBiasThenDecaysBack) {
  ControlPlaneConfig cfg;
  cfg.enabled = true;
  cfg.window = 64;
  cfg.autotune = true;
  cfg.p99_budget_ms = 1.0;
  cfg.autotune_step = 0.05;
  cfg.max_threshold_bias = 0.10;
  cfg.latency_window = 32;
  cfg.min_window = 16;
  ControlPlane cp(cfg);

  // Two over-budget epochs (10 ms >> 1 ms): bias climbs to the clamp and
  // the shadow window halves toward the floor.
  for (std::size_t i = 0; i < 64; ++i) cp.observe_latency(0.010);
  EXPECT_DOUBLE_EQ(cp.threshold_bias(), 0.10);
  EXPECT_EQ(cp.shadow_window(), 16u);
  EXPECT_EQ(cp.counters().threshold_raises, 2u);
  EXPECT_EQ(cp.counters().window_shrinks, 2u);

  // An under-budget epoch decays the bias and regrows the window.
  for (std::size_t i = 0; i < 32; ++i) cp.observe_latency(0.0001);
  EXPECT_DOUBLE_EQ(cp.threshold_bias(), 0.05);
  EXPECT_EQ(cp.shadow_window(), 32u);
  EXPECT_EQ(cp.counters().threshold_decays, 1u);
  EXPECT_EQ(cp.counters().window_grows, 1u);
  EXPECT_EQ(cp.counters().autotune_epochs, 3u);
}

// ----------------------------------------- LhrCache + CdnServer end to end

core::LhrConfig cell_lhr_config(ControlPlaneConfig cp) {
  core::LhrConfig config;
  config.enable_detection = false;  // retrain every window -> many candidates
  config.control_plane = std::move(cp);
  return config;
}

trace::Trace drift_trace(std::size_t n) {
  const auto schedule =
      gen::DriftSchedule::parse("remap:0.40-0.68@1.0;onehit:0.72-0.88@0.9");
  return gen::apply_drift(gen::make_trace(gen::TraceClass::kCdnA, n, 7), schedule, 7);
}

TEST(ControlPlaneEndToEnd, CountersIdenticalAcrossReplayThreadCounts) {
  constexpr std::size_t kRequests = 60'000;
  const std::uint64_t capacity =
      gen::headline_cache_size(gen::TraceClass::kCdnA, kRequests / 1e6);
  const trace::Trace trace = drift_trace(kRequests);

  ControlPlaneConfig cp = parse_control_plane("sample=0.5,window=96,div=0.045");
  std::string canon;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    auto backend = std::make_unique<ShardedCache>(
        4, capacity, [&cp](std::uint64_t cap) {
          return std::make_unique<core::LhrCache>(cap, cell_lhr_config(cp));
        });
    ServerConfig cfg;
    cfg.ram_bytes = 1ULL << 22;
    cfg.seed = 7;
    cfg.measured_lookup_cpu = false;
    CdnServer server(std::move(backend), cfg);
    const ServerReport report =
        server.replay_concurrent(trace, ReplayMode::kNormal, threads);
    EXPECT_TRUE(report.control_plane.active);
    EXPECT_EQ(report.control_plane.cells, 4u);
    if (threads == 1) {
      canon = report.control_plane.canonical();
      EXPECT_GT(report.control_plane.counters.candidates_staged, 0u);
    } else {
      EXPECT_EQ(report.control_plane.canonical(), canon) << "threads=" << threads;
    }
  }
}

TEST(ControlPlaneEndToEnd, ImpossibleDivergenceBoundForcesRollbacks) {
  // A divergence ceiling no real candidate can meet: every staged retrain
  // must roll back, the incumbent bootstrap model stays live, and the cache
  // keeps serving.
  constexpr std::size_t kRequests = 40'000;
  const std::uint64_t capacity =
      gen::headline_cache_size(gen::TraceClass::kCdnA, kRequests / 1e6);
  const trace::Trace trace = gen::make_trace(gen::TraceClass::kCdnA, kRequests, 7);

  core::LhrCache cache(
      capacity,
      cell_lhr_config(parse_control_plane("sample=1.0,window=64,div=0.0")));
  for (std::size_t i = 0; i < trace.size(); ++i) cache.access(trace[i]);

  const ControlPlane* cp = cache.control_plane();
  ASSERT_NE(cp, nullptr);
  EXPECT_GT(cp->counters().candidates_staged, 0u);
  EXPECT_GT(cp->counters().rollbacks, 0u);
  EXPECT_EQ(cp->counters().promotions, 0u);
}

TEST(ControlPlaneEndToEnd, GuardEngagesUnderDriftAndRecovers) {
  constexpr std::size_t kRequests = 60'000;
  const std::uint64_t capacity =
      gen::headline_cache_size(gen::TraceClass::kCdnA, kRequests / 1e6);
  const trace::Trace trace = drift_trace(kRequests);

  // Calibrated like bench_control_plane: the GBDT is near-perfect on the
  // synthetic classes, so drift is a small-absolute-value excursion.
  core::LhrCache cache(
      capacity, cell_lhr_config(parse_control_plane(
                    "sample=0.5,window=96,div=0.045,guard=0.03,rearm=0.015,"
                    "guardwin=512")));
  for (std::size_t i = 0; i < trace.size(); ++i) cache.access(trace[i]);

  const ControlPlane* cp = cache.control_plane();
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->counters().guard_engagements, 1u);
  EXPECT_GT(cp->counters().guarded_requests, 0u);
  EXPECT_GE(cp->counters().guard_engagements, cp->counters().guard_disengagements);
}

TEST(ControlPlaneEndToEnd, DisabledControlPlaneReportsInactive) {
  const std::uint64_t capacity = 1ULL << 24;
  auto backend = std::make_unique<ShardedCache>(2, capacity, [](std::uint64_t cap) {
    return std::make_unique<core::LhrCache>(cap);
  });
  ServerConfig cfg;
  cfg.ram_bytes = 1ULL << 20;
  cfg.measured_lookup_cpu = false;
  CdnServer server(std::move(backend), cfg);
  const trace::Trace trace = gen::make_trace(gen::TraceClass::kCdnA, 5'000, 3);
  const ServerReport report =
      server.replay_concurrent(trace, ReplayMode::kNormal, 2);
  EXPECT_FALSE(report.control_plane.active);
  EXPECT_EQ(report.control_plane.cells, 0u);
}

}  // namespace
}  // namespace lhr::server
