#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/bloom_filter.hpp"
#include "util/count_min_sketch.hpp"
#include "util/density_index.hpp"
#include "util/fenwick_tree.hpp"
#include "util/flat_hash_map.hpp"
#include "util/hash.hpp"
#include "util/least_squares.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lhr::util {
namespace {

// ----------------------------------------------------------------- RNG

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextDoubleRoughlyUniform) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(5);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowZeroReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

// ----------------------------------------------------------------- Hash

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a("") = offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(Hash, Mix64IsBijectiveOnSamples) {
  std::unordered_set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 10'000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 10'000u);
}

TEST(Hash, HashPairStrideIsOdd) {
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(hash_pair(k).h2 & 1, 1u);
}

// ----------------------------------------------------------- BloomFilter

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter filter(1000, 0.01);
  for (std::uint64_t k = 0; k < 1000; ++k) filter.insert(k);
  for (std::uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(filter.contains(k));
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  BloomFilter filter(10'000, 0.01);
  for (std::uint64_t k = 0; k < 10'000; ++k) filter.insert(k);
  int fp = 0;
  constexpr int kProbes = 20'000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.contains(1'000'000 + static_cast<std::uint64_t>(i))) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / kProbes, 0.03);
}

TEST(BloomFilter, InsertReportsPriorPresence) {
  BloomFilter filter(1000, 0.01);
  EXPECT_FALSE(filter.insert(42));
  EXPECT_TRUE(filter.insert(42));
}

TEST(BloomFilter, ClearForgetsEverything) {
  BloomFilter filter(1000, 0.01);
  for (std::uint64_t k = 0; k < 100; ++k) filter.insert(k);
  filter.clear();
  EXPECT_EQ(filter.inserted(), 0u);
  int present = 0;
  for (std::uint64_t k = 0; k < 100; ++k) present += filter.contains(k);
  EXPECT_EQ(present, 0);
}

TEST(BloomFilter, MemoryScalesWithCapacity) {
  BloomFilter small(1000, 0.01), large(100'000, 0.01);
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
}

// ------------------------------------------------------- CountMinSketch

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch sketch(4096, 1'000'000);
  for (int rep = 0; rep < 7; ++rep) sketch.increment(99);
  EXPECT_GE(sketch.estimate(99), 7u);
}

TEST(CountMinSketch, SaturatesAt15) {
  CountMinSketch sketch(4096, 1'000'000);
  for (int rep = 0; rep < 100; ++rep) sketch.increment(1);
  EXPECT_EQ(sketch.estimate(1), 15u);
}

TEST(CountMinSketch, AgingHalvesCounts) {
  CountMinSketch sketch(4096, 1'000'000'000);
  for (int rep = 0; rep < 8; ++rep) sketch.increment(5);
  const auto before = sketch.estimate(5);
  sketch.age();
  EXPECT_EQ(sketch.estimate(5), before / 2);
}

TEST(CountMinSketch, AutomaticAgingAtSampleBoundary) {
  CountMinSketch sketch(4096, 32);
  for (int i = 0; i < 32; ++i) sketch.increment(static_cast<std::uint64_t>(i % 4));
  EXPECT_EQ(sketch.increments_since_age(), 0u);  // age() fired
}

TEST(CountMinSketch, ColdKeysStayNearZero) {
  CountMinSketch sketch(1 << 16, 1'000'000);
  for (int rep = 0; rep < 15; ++rep) sketch.increment(7);
  // A sketch this sparse should not alias a cold key to a hot count.
  int high = 0;
  for (std::uint64_t k = 1000; k < 1100; ++k) high += (sketch.estimate(k) > 2);
  EXPECT_LE(high, 2);
}

// --------------------------------------------------------- FenwickTree

TEST(FenwickTree, PrefixSumsMatchNaive) {
  FenwickTree<std::int64_t> tree(32);
  std::vector<std::int64_t> shadow(32, 0);
  Xoshiro256 rng(3);
  for (int step = 0; step < 500; ++step) {
    const std::size_t i = rng.next_below(32);
    const auto delta = static_cast<std::int64_t>(rng.next_below(100)) - 50;
    tree.add(i, delta);
    shadow[i] += delta;
    const std::size_t q = rng.next_below(32);
    std::int64_t expected = 0;
    for (std::size_t j = 0; j <= q; ++j) expected += shadow[j];
    ASSERT_EQ(tree.prefix_sum(q), expected);
  }
}

TEST(FenwickTree, RangeSum) {
  FenwickTree<int> tree(10);
  for (std::size_t i = 0; i < 10; ++i) tree.add(i, static_cast<int>(i));
  EXPECT_EQ(tree.range_sum(2, 4), 2 + 3 + 4);
  EXPECT_EQ(tree.range_sum(0, 9), 45);
  EXPECT_EQ(tree.range_sum(5, 5), 5);
}

TEST(FenwickTree, LowerBoundFindsCrossing) {
  FenwickTree<std::uint64_t> tree(8);
  for (std::size_t i = 0; i < 8; ++i) tree.add(i, 10);
  EXPECT_EQ(tree.lower_bound(1), 0u);
  EXPECT_EQ(tree.lower_bound(10), 0u);
  EXPECT_EQ(tree.lower_bound(11), 1u);
  EXPECT_EQ(tree.lower_bound(80), 7u);
  EXPECT_EQ(tree.lower_bound(81), 8u);  // beyond total => size()
}

TEST(FenwickTree, TotalTracksAllAdds) {
  FenwickTree<std::uint64_t> tree(5);
  tree.add(0, 7);
  tree.add(4, 3);
  EXPECT_EQ(tree.total(), 10u);
}

// --------------------------------------------------------------- Stats

TEST(RunningStats, MatchesNaiveMoments) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.5, -1.0, 8.0};
  double sum = 0.0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(QuantileHistogram, ApproximatesExactQuantiles) {
  QuantileHistogram hist(1e-3, 1e3, 128);
  std::vector<double> values;
  Xoshiro256 rng(11);
  for (int i = 0; i < 50'000; ++i) {
    const double v = std::exp(rng.next_double() * 6.0 - 3.0);  // log-uniform
    hist.add(v);
    values.push_back(v);
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = exact_percentile(values, q);
    const double approx = hist.quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 0.05) << "q=" << q;
  }
}

TEST(QuantileHistogram, MeanIsExact) {
  QuantileHistogram hist;
  hist.add(1.0);
  hist.add(3.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 2.0);
}

TEST(QuantileHistogram, MergeEqualsCombinedAdds) {
  // merge() is the reduction step of the concurrent server replay: the
  // merged histogram must be bucket-for-bucket identical to adding every
  // sample into one histogram, so quantiles match exactly.
  QuantileHistogram combined(1e-3, 1e3, 128);
  QuantileHistogram a(1e-3, 1e3, 128);
  QuantileHistogram b(1e-3, 1e3, 128);
  Xoshiro256 rng(29);
  for (int i = 0; i < 10'000; ++i) {
    const double v = std::exp(rng.next_double() * 6.0 - 3.0);
    combined.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Bucket counts are integers, so quantiles are exactly equal; the mean is
  // a double sum whose addition order differs, so only near-equality holds.
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9 * combined.mean());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileHistogram, MergeEmptyIsIdentity) {
  QuantileHistogram a(1e-3, 1e3, 128);
  a.add(2.0);
  QuantileHistogram empty(1e-3, 1e3, 128);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(QuantileHistogram, MergeRejectsMismatchedLayout) {
  QuantileHistogram a(1e-3, 1e3, 128);
  QuantileHistogram buckets(1e-3, 1e3, 64);
  QuantileHistogram range(1e-6, 1e3, 128);
  EXPECT_FALSE(a.same_layout(buckets));
  EXPECT_FALSE(a.same_layout(range));
  EXPECT_THROW(a.merge(buckets), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
  EXPECT_TRUE(a.same_layout(a));
}

TEST(ExactPercentile, EdgeCases) {
  EXPECT_EQ(exact_percentile({5.0}, 0.0), 5.0);
  EXPECT_EQ(exact_percentile({5.0}, 1.0), 5.0);
  EXPECT_EQ(exact_percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.0);
  EXPECT_EQ(exact_percentile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
}

TEST(ExactPercentile, BoundaryContract) {
  // An empty sample has no value to report: returning 0 silently poisons
  // downstream math, so the contract is to throw.
  EXPECT_THROW((void)exact_percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)exact_percentile({}, 0.0), std::invalid_argument);
  // NaN q is a caller bug, not a clampable input.
  EXPECT_THROW((void)exact_percentile({1.0, 2.0}, std::nan("")),
               std::invalid_argument);
  // q outside [0, 1] clamps to min/max.
  EXPECT_EQ(exact_percentile({1.0, 2.0, 3.0}, -0.5), 1.0);
  EXPECT_EQ(exact_percentile({1.0, 2.0, 3.0}, 2.0), 3.0);
}

TEST(QuantileHistogram, BoundaryContract) {
  QuantileHistogram empty(1e-3, 1e3, 128);
  // Empty histogram: every quantile is the documented 0.0 (count() tells
  // callers whether that is a real value).
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(1.0), 0.0);

  QuantileHistogram hist(1e-3, 1e3, 128);
  hist.add(0.01);
  hist.add(1.0);
  hist.add(100.0);
  // q <= 0 (and NaN, which fails every comparison and pins to 0) is a
  // minimum estimate: the first non-empty bucket's upper edge. q >= 1 is a
  // maximum estimate: the last non-empty bucket's upper edge. Both are
  // within one bucket's relative error of the true extremes.
  const double rel = 0.06;  // > one bucket step at 128 buckets/decade
  EXPECT_NEAR(hist.quantile(0.0), 0.01, 0.01 * rel);
  EXPECT_NEAR(hist.quantile(-1.0), 0.01, 0.01 * rel);
  EXPECT_NEAR(hist.quantile(std::nan("")), 0.01, 0.01 * rel);
  EXPECT_NEAR(hist.quantile(1.0), 100.0, 100.0 * rel);
  EXPECT_NEAR(hist.quantile(5.0), 100.0, 100.0 * rel);
  EXPECT_GE(hist.quantile(0.0), 0.01);
  EXPECT_GE(hist.quantile(1.0), 100.0);
}

// -------------------------------------------------------------- Parse

TEST(Parse, DoubleAcceptsWholeFiniteTokens) {
  EXPECT_EQ(parse_double("1.5"), 1.5);
  EXPECT_EQ(parse_double("-0.25"), -0.25);
  EXPECT_EQ(parse_double("1e3"), 1000.0);
  EXPECT_EQ(parse_double("0"), 0.0);
}

TEST(Parse, DoubleRejectsJunkAndNonFinite) {
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("1.5x"));   // trailing junk
  EXPECT_FALSE(parse_double("1.5 "));   // whole token must parse
  EXPECT_FALSE(parse_double("inf"));
  EXPECT_FALSE(parse_double("nan"));
  EXPECT_FALSE(parse_double("1e999"));  // overflow
}

TEST(Parse, U64AcceptsWholeUnsignedTokens) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("123456789"), 123456789u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
}

TEST(Parse, U64RejectsJunkSignsAndOverflow) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("abc"));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // 2^64
}

TEST(Parse, RequireHelpersNameFlagAndToken) {
  // The thrown message must carry both the flag name and the offending
  // token so a typo'd CLI invocation is diagnosable from the error alone.
  try {
    (void)require_double("--capacity-gb", "12parsecs");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--capacity-gb"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12parsecs"), std::string::npos);
  }
  try {
    (void)require_u64("LHR_BENCH_REQUESTS", "many");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("LHR_BENCH_REQUESTS"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("many"), std::string::npos);
  }
  EXPECT_EQ(require_double("--x", "2.5"), 2.5);
  EXPECT_EQ(require_u64("--y", "42"), 42u);
}

// -------------------------------------------------------- LeastSquares

TEST(LeastSquares, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 0.7 * i);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, -0.7, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LeastSquares, DegenerateInputsGiveZeroFit) {
  EXPECT_EQ(fit_linear({}, {}).n, 0u);
  EXPECT_EQ(fit_linear(std::vector<double>{1.0}, std::vector<double>{2.0}).n, 0u);
  // Zero x-variance.
  const auto fit = fit_linear(std::vector<double>{2.0, 2.0, 2.0},
                              std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(LeastSquares, NoisyLineApproximatelyRecovered) {
  std::vector<double> x, y;
  Xoshiro256 rng(21);
  for (int i = 0; i < 2000; ++i) {
    x.push_back(i * 0.01);
    y.push_back(1.5 + 2.0 * i * 0.01 + (rng.next_double() - 0.5) * 0.1);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.02);
  EXPECT_NEAR(fit.intercept, 1.5, 0.05);
}

// -------------------------------------------------------- DensityIndex

TEST(DensityIndex, BytesAboveMatchesNaive) {
  DensityIndex index;
  struct Item {
    std::uint64_t id;
    double density;
    std::uint64_t bytes;
  };
  std::vector<Item> items;
  Xoshiro256 rng(17);
  for (std::uint64_t id = 0; id < 200; ++id) {
    const double density = std::pow(10.0, rng.next_double() * 12.0 - 6.0);
    const std::uint64_t bytes = 1 + rng.next_below(1'000'000);
    index.upsert(id, density, bytes);
    items.push_back({id, density, bytes});
  }
  // The bucketed query must agree with a naive scan up to one bucket width
  // (items within ~3.7% in density may be classified either way).
  for (int probe = 0; probe < 50; ++probe) {
    const double d = std::pow(10.0, rng.next_double() * 12.0 - 6.0);
    std::uint64_t strictly_above = 0, near = 0;
    for (const auto& item : items) {
      if (item.density > d * 1.04) {
        strictly_above += item.bytes;
      } else if (item.density > d * 0.96) {
        near += item.bytes;
      }
    }
    const std::uint64_t reported = index.bytes_above(d);
    EXPECT_GE(reported + near, strictly_above);
    EXPECT_LE(reported, strictly_above + near);
  }
}

TEST(DensityIndex, InPrefixForTopItem) {
  DensityIndex index;
  index.upsert(1, 100.0, 10);
  index.upsert(2, 10.0, 10);
  index.upsert(3, 1.0, 10);
  // Capacity 15: item 1 fully fits, item 2 straddles (fractional => in),
  // item 3 is out (20 denser bytes above it, >= 15).
  EXPECT_TRUE(index.in_prefix(1, 15));
  EXPECT_TRUE(index.in_prefix(2, 15));
  EXPECT_FALSE(index.in_prefix(3, 15));
}

TEST(DensityIndex, UpsertReplacesOldEntry) {
  DensityIndex index;
  index.upsert(1, 100.0, 10);
  index.upsert(1, 0.001, 20);  // moved down, resized
  EXPECT_EQ(index.total_bytes(), 20u);
  EXPECT_EQ(index.item_count(), 1u);
  EXPECT_EQ(index.bytes_above(1.0), 0u);
}

TEST(DensityIndex, EraseRemoves) {
  DensityIndex index;
  index.upsert(1, 5.0, 10);
  index.erase(1);
  index.erase(1);  // idempotent
  EXPECT_EQ(index.item_count(), 0u);
  EXPECT_EQ(index.total_bytes(), 0u);
  EXPECT_FALSE(index.in_prefix(1, 100));
}

TEST(DensityIndex, ZeroDensityNeverBeatsPositive) {
  DensityIndex index;
  index.upsert(1, 0.0, 50);
  index.upsert(2, 1.0, 50);
  EXPECT_TRUE(index.in_prefix(2, 60));
  EXPECT_FALSE(index.in_prefix(1, 40));  // 50 denser bytes above >= 40
}

// ----------------------------------------------------------- FlatHashMap

TEST(FlatHashMap, InsertFindEraseConformance) {
  FlatHashMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(1), map.end());
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.erase(1), 0u);

  auto [it, inserted] = map.try_emplace(1, 10);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 1u);
  EXPECT_EQ(it->second, 10);
  // try_emplace on a present key leaves the value untouched.
  auto [it2, inserted2] = map.try_emplace(1, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 10);

  map[2] = 20;                 // operator[] inserts value-initialized then assigns
  map.insert_or_assign(1, 11); // overwrites
  EXPECT_EQ(map.at(1), 11);
  EXPECT_EQ(map.at(2), 20);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_THROW(static_cast<void>(map.at(3)), std::out_of_range);

  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.size(), 1u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(2), map.end());
}

TEST(FlatHashMap, GrowsThroughRehashAndKeepsEveryEntry) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  map.reserve(100);  // pre-size; must still be correct when exceeded
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) map[k * 2'654'435'761ULL] = k;
  EXPECT_EQ(map.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(map.at(k * 2'654'435'761ULL), k);
  }
  EXPECT_GT(map.memory_bytes(), 0u);
  // Iteration visits each entry exactly once (no wrap double-visit without
  // concurrent erasure).
  std::size_t visited = 0;
  std::uint64_t sum = 0;
  for (const auto& [key, value] : map) {
    ++visited;
    sum += value;
  }
  EXPECT_EQ(visited, kN);
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

/// Pathological hasher: everything lands in 8 home buckets, producing long
/// probe clusters that wrap the table end — the worst case for
/// backward-shift deletion.
struct ClusterHash {
  [[nodiscard]] std::size_t operator()(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(key & 7);
  }
};

TEST(FlatHashMap, BackwardShiftEraseSurvivesPathologicalClustering) {
  FlatHashMap<std::uint64_t, std::uint64_t, ClusterHash> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Xoshiro256 rng(2024);
  // Interleave inserts and erases so clusters form, wrap and re-pack.
  for (int round = 0; round < 20'000; ++round) {
    const std::uint64_t key = rng.next_below(512);
    if (rng.next_double() < 0.6) {
      map[key] = static_cast<std::uint64_t>(round);
      ref[key] = static_cast<std::uint64_t>(round);
    } else {
      EXPECT_EQ(map.erase(key), ref.erase(key));
    }
    if (round % 1'000 == 0) {
      ASSERT_EQ(map.size(), ref.size());
    }
  }
  ASSERT_EQ(map.size(), ref.size());
  for (const auto& [key, value] : ref) {
    ASSERT_TRUE(map.contains(key)) << key;
    ASSERT_EQ(map.at(key), value) << key;
  }
}

TEST(FlatHashMap, PrefetchIsPureHintUnderPathologicalClustering) {
  // prefetch() must never change probe results — it is a cache hint, not a
  // lookup. Fuzz it against a reference map under the worst-case hasher
  // (8-bucket clusters wrapping the table end), prefetching present,
  // absent, and about-to-be-erased keys before every operation.
  FlatHashMap<std::uint64_t, std::uint64_t, ClusterHash> map;
  map.prefetch(42);  // empty map: no slots yet, must be a no-op
  EXPECT_FALSE(map.contains(42));

  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Xoshiro256 rng(31337);
  for (int round = 0; round < 20'000; ++round) {
    const std::uint64_t key = rng.next_below(512);
    map.prefetch(key);
    map.prefetch(rng.next_below(1'024));  // often absent / out of cluster
    const double dice = rng.next_double();
    if (dice < 0.5) {
      map[key] = static_cast<std::uint64_t>(round);
      ref[key] = static_cast<std::uint64_t>(round);
    } else if (dice < 0.8) {
      const auto it = map.find(key);
      const auto rit = ref.find(key);
      ASSERT_EQ(it != map.end(), rit != ref.end()) << key;
      if (it != map.end()) {
        ASSERT_EQ(it->second, rit->second) << key;
      }
    } else {
      ASSERT_EQ(map.erase(key), ref.erase(key)) << key;
    }
  }
  ASSERT_EQ(map.size(), ref.size());
  for (const auto& [key, value] : ref) {
    map.prefetch(key);
    ASSERT_EQ(map.at(key), value) << key;
  }
}

TEST(FlatHashMap, FuzzAgainstUnorderedMap) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Xoshiro256 rng(777);
  for (int op = 0; op < 100'000; ++op) {
    const std::uint64_t key = rng.next_below(4'096);
    const double dice = rng.next_double();
    if (dice < 0.45) {
      const std::uint64_t value = rng();
      map.insert_or_assign(key, value);
      ref[key] = value;
    } else if (dice < 0.7) {
      auto [it, inserted] = map.try_emplace(key, static_cast<std::uint64_t>(op));
      auto [rit, rinserted] = ref.try_emplace(key, static_cast<std::uint64_t>(op));
      ASSERT_EQ(inserted, rinserted);
      ASSERT_EQ(it->second, rit->second);
    } else if (dice < 0.9) {
      ASSERT_EQ(map.erase(key), ref.erase(key));
    } else {
      const auto it = map.find(key);
      const auto rit = ref.find(key);
      ASSERT_EQ(it != map.end(), rit != ref.end());
      if (rit != ref.end()) {
        ASSERT_EQ(it->second, rit->second);
      }
    }
  }
  ASSERT_EQ(map.size(), ref.size());
  std::size_t visited = 0;
  for (const auto& [key, value] : map) {
    ++visited;
    const auto rit = ref.find(key);
    ASSERT_NE(rit, ref.end());
    ASSERT_EQ(value, rit->second);
  }
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatHashMap, IterateEraseSweepMatchesUnorderedMap) {
  // The `it = map.erase(it)` predicate-sweep pattern used by the feature
  // pruner and HRO's window roll. The predicate is idempotent (depends only
  // on the entry), so wrap-around double-visits cannot change the outcome.
  for (const std::uint64_t seed : {1ULL, 42ULL, 913ULL}) {
    FlatHashMap<std::uint64_t, std::uint64_t, ClusterHash> map;  // worst case
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Xoshiro256 rng(seed);
    for (int i = 0; i < 2'000; ++i) {
      const std::uint64_t key = rng.next_below(1'024);
      const std::uint64_t value = rng.next_below(100);
      map.insert_or_assign(key, value);
      ref[key] = value;
    }
    const auto drop = [](std::uint64_t value) { return value < 60; };
    for (auto it = map.begin(); it != map.end();) {
      if (drop(it->second)) {
        it = map.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = ref.begin(); it != ref.end();) {
      if (drop(it->second)) {
        it = ref.erase(it);
      } else {
        ++it;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
    for (const auto& [key, value] : ref) {
      ASSERT_TRUE(map.contains(key));
      ASSERT_EQ(map.at(key), value);
    }
  }
}

TEST(FlatHashMap, EraseDuringIterationNeverSkipsAnEntry) {
  // Erase a subset mid-sweep and verify every surviving entry was visited
  // at least once (double-visits allowed, misses are not).
  FlatHashMap<std::uint64_t, int, ClusterHash> map;
  for (std::uint64_t k = 0; k < 300; ++k) map[k] = 0;
  for (auto it = map.begin(); it != map.end();) {
    if (it->first % 3 == 0) {
      it = map.erase(it);
    } else {
      ++it->second;  // mark visited
      ++it;
    }
  }
  std::size_t survivors = 0;
  for (const auto& [key, visits] : map) {
    EXPECT_NE(key % 3, 0u);
    EXPECT_GE(visits, 1) << key;
    ++survivors;
  }
  EXPECT_EQ(survivors, 200u);
}

}  // namespace
}  // namespace lhr::util
