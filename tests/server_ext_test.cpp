// Tests for the concurrency substrates (sharded cache, async admission
// queue) and the RL-Cache baseline.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_set>
#include <vector>

#include "gen/zipf.hpp"
#include "policies/gdsf.hpp"
#include "policies/lru.hpp"
#include "policies/rl_cache.hpp"
#include "policy_conformance.hpp"
#include "server/admission_queue.hpp"
#include "server/sharded_cache.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace lhr::testing {

// ShardedCache is a sim::CachePolicy: it must pass the same conformance
// suite as every single-threaded policy, for several shard counts and
// inner policies.
INSTANTIATE_TEST_SUITE_P(
    ShardedCaches, PolicyConformance,
    ::testing::Values(
        ConformanceCase{"Sharded_LRU_x1",
                        [] {
                          return std::make_unique<server::ShardedCache>(
                              1, 2ULL << 30, [](std::uint64_t cap) {
                                return std::make_unique<policy::Lru>(cap);
                              });
                        }},
        ConformanceCase{"Sharded_LRU_x8",
                        [] {
                          return std::make_unique<server::ShardedCache>(
                              8, 2ULL << 30, [](std::uint64_t cap) {
                                return std::make_unique<policy::Lru>(cap);
                              });
                        }},
        ConformanceCase{"Sharded_GDSF_x7",
                        [] {
                          return std::make_unique<server::ShardedCache>(
                              7, 2ULL << 30, [](std::uint64_t cap) {
                                return std::make_unique<policy::Gdsf>(cap);
                              });
                        }}),
    conformance_name);

}  // namespace lhr::testing

namespace lhr::server {
namespace {

ShardedCache::PolicyFactory lru_factory() {
  return [](std::uint64_t capacity) -> std::unique_ptr<sim::CachePolicy> {
    return std::make_unique<policy::Lru>(capacity);
  };
}

// ----------------------------------------------------------- ShardedCache

TEST(ShardedCache, RejectsInvalidConstruction) {
  EXPECT_THROW(ShardedCache(0, 1000, lru_factory()), std::invalid_argument);
  EXPECT_THROW(ShardedCache(4, 1000, nullptr), std::invalid_argument);
  EXPECT_THROW(ShardedCache(8, 4, lru_factory()), std::invalid_argument);
}

TEST(ShardedCache, ShardMappingIsStable) {
  ShardedCache cache(8, 80'000, lru_factory());
  for (trace::Key k = 0; k < 100; ++k) {
    EXPECT_EQ(cache.shard_of(k), cache.shard_of(k));
    EXPECT_LT(cache.shard_of(k), 8u);
  }
}

TEST(ShardedCache, SingleThreadSemanticsMatchLru) {
  // With one shard the wrapper must behave exactly like the inner policy.
  ShardedCache sharded(1, 300, lru_factory());
  policy::Lru plain(300);
  gen::ZipfSampler zipf(20, 0.8);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 5'000; ++i) {
    const trace::Request r{i * 1.0, zipf.sample(rng), 100};
    ASSERT_EQ(sharded.access(r), plain.access(r));
  }
}

TEST(ShardedCache, ConcurrentAccessKeepsInvariants) {
  ShardedCache cache(8, 800'000, lru_factory());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::atomic<std::uint64_t> hits{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gen::ZipfSampler zipf(500, 1.0);
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      std::uint64_t local_hits = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const trace::Request r{i * 1.0, zipf.sample(rng), 100 + rng.next_below(900)};
        local_hits += cache.access(r);
      }
      hits += local_hits;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  // A hot Zipf working set must produce plenty of hits even under races.
  EXPECT_GT(hits.load(), static_cast<std::uint64_t>(kThreads * kPerThread / 4));
  EXPECT_GT(cache.metadata_bytes(), 0u);
  EXPECT_EQ(cache.name(), "Sharded(LRU)x8");
}

TEST(ShardedCache, KeysStayInTheirShard) {
  // Same key from many threads: per-key serialization means hits after the
  // first access are deterministic.
  ShardedCache cache(4, 40'000, lru_factory());
  cache.access({0.0, 7, 100});
  std::atomic<int> misses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1'000; ++i) {
        if (!cache.access({1.0 + i, 7, 100})) ++misses;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(misses.load(), 0);
}

// ------------------------------------- ShardedCache as a sim::CachePolicy

TEST(ShardedCachePolicy, EngineReplayMatchesDirectAccess) {
  // Driving the sharded cache through sim::simulate must agree with calling
  // access() by hand (same hits, same per-request outcomes).
  const auto trace = gen::make_trace(gen::TraceClass::kCdnA, 6'000, 17);

  ShardedCache direct(4, 64ULL << 20, lru_factory());
  std::uint64_t direct_hits = 0;
  for (const auto& r : trace) direct_hits += direct.access(r);

  ShardedCache driven(4, 64ULL << 20, lru_factory());
  sim::SimOptions options;
  options.deduct_metadata = false;  // pure replay, no capacity adjustments
  const auto metrics = sim::simulate(driven, trace, options);

  EXPECT_EQ(metrics.hits, direct_hits);
  EXPECT_EQ(metrics.requests, trace.size());
  EXPECT_EQ(driven.used_bytes(), direct.used_bytes());
}

TEST(ShardedCachePolicy, EngineMetadataDeductionAppliesToShards) {
  // With deduct_metadata on, the engine periodically calls set_capacity;
  // the shards must re-split and the invariant used <= capacity must hold.
  const auto trace = gen::make_trace(gen::TraceClass::kCdnB, 40'000, 23);
  ShardedCache cache(8, 64ULL << 20, lru_factory());
  sim::SimOptions options;
  options.capacity_adjust_interval = 4'096;
  const auto metrics = sim::simulate(cache, trace, options);

  EXPECT_GT(metrics.requests, 0u);
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
  std::uint64_t shard_sum = 0;
  for (std::size_t i = 0; i < cache.shard_count(); ++i) {
    shard_sum += cache.shard_capacity_bytes(i);
  }
  EXPECT_EQ(shard_sum, cache.capacity_bytes());
}

TEST(ShardedCachePolicy, SetCapacitySplitsEvenlyWithRemainder) {
  ShardedCache cache(4, 4'000, lru_factory());
  cache.set_capacity(1'003);  // 250 each + 3 remainder bytes
  EXPECT_EQ(cache.capacity_bytes(), 1'003u);
  EXPECT_EQ(cache.shard_capacity_bytes(0), 251u);
  EXPECT_EQ(cache.shard_capacity_bytes(1), 251u);
  EXPECT_EQ(cache.shard_capacity_bytes(2), 251u);
  EXPECT_EQ(cache.shard_capacity_bytes(3), 250u);

  cache.set_capacity(4'000);  // exact split, remainder 0
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cache.shard_capacity_bytes(i), 1'000u);
  }
}

TEST(ShardedCachePolicy, ConstructorDistributesRemainder) {
  ShardedCache cache(3, 1'000, lru_factory());
  EXPECT_EQ(cache.shard_capacity_bytes(0), 334u);
  EXPECT_EQ(cache.shard_capacity_bytes(1), 333u);
  EXPECT_EQ(cache.shard_capacity_bytes(2), 333u);
  EXPECT_EQ(cache.capacity_bytes(), 1'000u);
}

TEST(ShardedCachePolicy, ShrinkEvictsDownToNewCapacity) {
  ShardedCache cache(2, 2'000, lru_factory());
  for (trace::Key k = 0; k < 20; ++k) {
    cache.access({double(k), k, 100});
  }
  cache.set_capacity(400);
  // LRU evicts lazily: each shard enforces the shrunken budget on the next
  // access it serves. Touch every shard once, then the invariant must hold.
  bool touched[2] = {false, false};
  for (trace::Key k = 100; !(touched[0] && touched[1]); ++k) {
    touched[cache.shard_of(k)] = true;
    cache.access({static_cast<double>(k), k, 50});
  }
  EXPECT_LE(cache.used_bytes(), 400u);
}

TEST(ShardedCachePolicy, UsableViaPolicyPointer) {
  std::unique_ptr<sim::CachePolicy> policy =
      std::make_unique<ShardedCache>(4, 40'000, lru_factory());
  EXPECT_EQ(policy->name(), "Sharded(LRU)x4");
  EXPECT_FALSE(policy->access({0.0, 1, 100}));
  EXPECT_TRUE(policy->access({1.0, 1, 100}));
  EXPECT_EQ(policy->used_bytes(), 100u);
  EXPECT_GT(policy->metadata_bytes(), 0u);
}

// --------------------------------------------------------- AdmissionQueue

TEST(AdmissionQueue, ProcessesEverythingInOrder) {
  std::vector<trace::Key> seen;
  std::mutex seen_mutex;
  AdmissionQueue queue([&](const trace::Request& r) {
    const std::lock_guard<std::mutex> lock(seen_mutex);
    seen.push_back(r.key);
  });
  for (trace::Key k = 0; k < 100; ++k) {
    EXPECT_TRUE(queue.enqueue({static_cast<double>(k), k, 1}));
  }
  queue.drain();
  ASSERT_EQ(seen.size(), 100u);
  for (trace::Key k = 0; k < 100; ++k) EXPECT_EQ(seen[k], k);  // FIFO
  EXPECT_EQ(queue.processed(), 100u);
  EXPECT_EQ(queue.dropped(), 0u);
}

TEST(AdmissionQueue, ShedsLoadWhenFull) {
  std::mutex gate;
  gate.lock();  // block the worker on the first item
  AdmissionQueue queue(
      [&](const trace::Request&) {
        const std::lock_guard<std::mutex> lock(gate);
      },
      /*max_depth=*/4);
  // 1 in flight + 4 queued fit; beyond that, drops.
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    accepted += queue.enqueue({static_cast<double>(i), 1, 1});
  }
  EXPECT_LT(accepted, 20);
  EXPECT_GT(queue.dropped(), 0u);
  gate.unlock();
  queue.drain();
}

// Regression: a retry that re-enqueues the same key while the queue is
// still full used to bump dropped() every time, so one shed admission
// could be counted arbitrarily often. Dropped admissions must be counted
// once per shed admission, and count anew only after the key has actually
// made it into the queue.
TEST(AdmissionQueue, DropAccountingIsOncePerShedAdmission) {
  std::mutex gate;
  std::atomic<int> entered{0};
  gate.lock();  // block the worker inside admit_
  AdmissionQueue queue(
      [&](const trace::Request&) {
        ++entered;
        const std::lock_guard<std::mutex> lock(gate);
      },
      /*max_depth=*/2);

  // Park the worker: once it is inside admit_ the queue cannot drain, so
  // every capacity decision below is deterministic. Only call with the
  // queue empty and the worker idle.
  const auto park_worker = [&](trace::Key plug) {
    const int before = entered.load();
    ASSERT_TRUE(queue.enqueue({0.0, plug, 1}));
    while (entered.load() <= before) std::this_thread::yield();
  };

  park_worker(/*plug=*/1);
  EXPECT_TRUE(queue.enqueue({0.0, 2, 1}));
  EXPECT_TRUE(queue.enqueue({0.0, 3, 1}));  // queue now full (depth 2)

  // The same key re-enqueued by retries while full: ONE shed admission.
  for (int retry = 0; retry < 5; ++retry) {
    EXPECT_FALSE(queue.enqueue({1.0, 99, 1}));
  }
  EXPECT_EQ(queue.dropped(), 1u);

  // A different key is a different admission.
  EXPECT_FALSE(queue.enqueue({1.0, 100, 1}));
  EXPECT_EQ(queue.dropped(), 2u);

  // Once the key finally gets in, its shed state is cleared...
  gate.unlock();
  queue.drain();
  EXPECT_TRUE(queue.enqueue({2.0, 99, 1}));
  queue.drain();
  EXPECT_EQ(queue.dropped(), 2u);  // a successful enqueue added nothing

  // ...so a later shed of the same key is a new drop.
  gate.lock();
  park_worker(/*plug=*/1);
  EXPECT_TRUE(queue.enqueue({3.0, 2, 1}));
  EXPECT_TRUE(queue.enqueue({3.0, 3, 1}));
  EXPECT_FALSE(queue.enqueue({3.0, 99, 1}));
  EXPECT_EQ(queue.dropped(), 3u);
  gate.unlock();
  queue.drain();
}

TEST(AdmissionQueue, MultipleProducers) {
  std::atomic<std::uint64_t> applied{0};
  AdmissionQueue queue([&](const trace::Request&) { ++applied; }, 1 << 16);
  std::vector<std::thread> producers;
  for (int t = 0; t < 6; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 5'000; ++i) queue.enqueue({0.0, 1, 1});
    });
  }
  for (auto& t : producers) t.join();
  queue.drain();
  EXPECT_EQ(applied.load() + queue.dropped(), 30'000u);
}

TEST(AdmissionQueue, RejectsInvalidConstruction) {
  EXPECT_THROW(AdmissionQueue(nullptr), std::invalid_argument);
  EXPECT_THROW(AdmissionQueue([](const trace::Request&) {}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lhr::server

// --------------------------------------------------------------- RL-Cache

namespace lhr::policy {
namespace {

TEST(RlCachePolicy, LearnsToBypassOneHitWonders) {
  RlCache rl(50'000);
  // Interleave a hot set (always reused quickly) with one-hit wonders of a
  // distinctive large size class. The policy should drive the admission
  // probability of the wonder bucket down.
  gen::ZipfSampler zipf(20, 1.0);
  util::Xoshiro256 rng(2);
  trace::Key fresh = 1'000'000;
  for (int i = 0; i < 60'000; ++i) {
    const double t = i * 1.0;
    if (i % 2 == 0) {
      rl.access({t, fresh++, 40'000});  // big one-hit wonder
    } else {
      rl.access({t, zipf.sample(rng), 500});  // small hot object
    }
  }
  const double wonder_p = rl.admit_probability(40'000, 1e9, 1);
  const double hot_p = rl.admit_probability(500, 2.0, 50);
  EXPECT_LT(wonder_p, hot_p);
  EXPECT_LT(wonder_p, 0.5);
}

TEST(RlCachePolicy, CapacityInvariant) {
  RlCache rl(30'000);
  gen::ZipfSampler zipf(300, 0.9);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 20'000; ++i) {
    rl.access({i * 1.0, zipf.sample(rng), 100 + rng.next_below(900)});
    ASSERT_LE(rl.used_bytes(), 30'000u);
  }
  EXPECT_GT(rl.metadata_bytes(), 0u);
}

}  // namespace
}  // namespace lhr::policy
