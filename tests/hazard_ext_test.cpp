// Tests for the beyond-Poisson hazard extension: hyperexponential IRT
// fitting and the age-decay HRO variant.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/cdn_model.hpp"
#include "hazard/hro.hpp"
#include "hazard/irt_models.hpp"
#include "policies/lru.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace lhr::hazard {
namespace {

std::vector<double> hyperexp_samples(const HyperExp& model, std::size_t n,
                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double rate = rng.next_double() < model.p ? model.lambda1 : model.lambda2;
    samples.push_back(-std::log(std::max(rng.next_double(), 1e-15)) / rate);
  }
  return samples;
}

// ---------------------------------------------------------------- HyperExp

TEST(HyperExp, DistributionIdentities) {
  const HyperExp m{0.3, 2.0, 0.1};
  EXPECT_NEAR(m.survival(0.0), 1.0, 1e-12);
  EXPECT_NEAR(m.mean(), 0.3 / 2.0 + 0.7 / 0.1, 1e-12);
  // pdf integrates (numerically) to ~1.
  double integral = 0.0;
  for (double t = 0.0; t < 200.0; t += 0.01) integral += m.pdf(t) * 0.01;
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(HyperExp, HazardDecreasesWithAge) {
  const HyperExp m{0.5, 5.0, 0.2};
  double prev = m.hazard(0.0);
  for (double t = 0.5; t < 30.0; t += 0.5) {
    const double h = m.hazard(t);
    EXPECT_LE(h, prev + 1e-12);
    prev = h;
  }
  // Asymptotically the slow phase dominates.
  EXPECT_NEAR(m.hazard(1e4), 0.2, 1e-6);
  EXPECT_NEAR(m.hazard_decay(0.0), 1.0, 1e-12);
  EXPECT_LT(m.hazard_decay(50.0), 0.2);
}

TEST(HyperExp, PureExponentialHasConstantHazard) {
  const HyperExp m{1.0, 3.0, 3.0};
  for (double t = 0.0; t < 10.0; t += 1.0) EXPECT_NEAR(m.hazard(t), 3.0, 1e-9);
}

// --------------------------------------------------------------------- EM

TEST(HyperExpEm, RecoversWellSeparatedMixture) {
  const HyperExp truth{0.6, 10.0, 0.1};
  const auto samples = hyperexp_samples(truth, 50'000, 1);
  const auto fit = fit_hyperexp_em(samples);
  EXPECT_NEAR(fit.p, truth.p, 0.05);
  EXPECT_NEAR(fit.lambda1 / truth.lambda1, 1.0, 0.15);
  EXPECT_NEAR(fit.lambda2 / truth.lambda2, 1.0, 0.15);
}

TEST(HyperExpEm, FitsPlainExponentialGracefully) {
  util::Xoshiro256 rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(-std::log(std::max(rng.next_double(), 1e-15)) / 2.0);
  }
  const auto fit = fit_hyperexp_em(samples);
  // Mean must be preserved regardless of how the phases split.
  EXPECT_NEAR(fit.mean(), 0.5, 0.05);
}

TEST(HyperExpEm, DegenerateInputs) {
  EXPECT_NO_THROW((void)fit_hyperexp_em({}));
  const auto single = fit_hyperexp_em(std::vector<double>{2.0});
  EXPECT_NEAR(single.mean(), 2.0, 1e-9);
  // Negative/zero samples are ignored.
  const auto mixed = fit_hyperexp_em(std::vector<double>{-1.0, 0.0, 1.0, 1.0, 1.0});
  EXPECT_GT(mixed.mean(), 0.0);
}

TEST(HyperExpEm, PhaseOrderingConvention) {
  const auto fit = fit_hyperexp_em(hyperexp_samples({0.4, 8.0, 0.05}, 20'000, 3));
  EXPECT_GE(fit.lambda1, fit.lambda2);
}

// ---------------------------------------------------------- age-decay HRO

trace::Trace heavy_tail_trace(std::size_t n, std::uint64_t seed) {
  // Hot contents request every ~1s; a churning population appears in bursts
  // then dies — classic decreasing-hazard traffic.
  util::Xoshiro256 rng(seed);
  trace::Trace t;
  double time = 0.0;
  trace::Key burst_key = 1'000'000;
  for (std::size_t i = 0; i < n; ++i) {
    time += 0.5;
    if (i % 4 != 0) {
      t.push_back({time, rng.next_below(50), 1'000});  // hot core
    } else {
      // Bursty content: 3 quick requests then never again.
      const trace::Key k = burst_key++;
      t.push_back({time, k, 1'000});
      t.push_back({time + 0.01, k, 1'000});
      t.push_back({time + 0.02, k, 1'000});
    }
  }
  return t;
}

TEST(HroAgeDecay, TightensTheBoundOnDecreasingHazardTraffic) {
  // The extension's purpose: on bursty (decreasing-hazard) traffic, burst
  // corpses squat in the Poisson ranking; survival decay clears them.
  const auto t = heavy_tail_trace(20'000, 4);
  HroConfig poisson{.capacity_bytes = 20'000};
  HroConfig decayed{.capacity_bytes = 20'000};
  decayed.age_decay_hazard = true;
  decayed.hazard_refresh_interval = 1'024;
  Hro a(poisson), b(decayed);
  for (const auto& r : t) {
    a.classify(r);
    b.classify(r);
  }
  EXPECT_GT(b.hit_ratio(), a.hit_ratio() + 0.05);
  EXPECT_TRUE(b.irt_model_ready());
  // The fitted mixture must reflect the two IRT scales (0.01 s vs ~25 s).
  EXPECT_GT(b.irt_model().lambda1, 1.0);
  EXPECT_LT(b.irt_model().lambda2, 1.0);
}

TEST(HroAgeDecay, DecaysStaleContentsOutOfThePrefix) {
  HroConfig cfg{.capacity_bytes = 2'000};
  cfg.age_decay_hazard = true;
  cfg.hazard_refresh_interval = 64;
  cfg.window_unique_bytes_mult = 4.0;
  Hro hro(cfg);
  // Phase 1: contents 1..30 hot (fills several windows, trains the model).
  double time = 0.0;
  for (int round = 0; round < 60; ++round) {
    for (trace::Key k = 1; k <= 30; ++k) {
      time += 0.05;
      hro.classify({time, k, 100});
    }
  }
  // Phase 2: contents 1..10 go silent; 11..30 stay hot. New content 99
  // arriving repeatedly must eventually be classified a hit: the stale
  // contents' decayed hazards no longer block the prefix.
  std::uint64_t late_hits = 0;
  for (int round = 0; round < 200; ++round) {
    for (trace::Key k = 11; k <= 30; ++k) {
      time += 0.05;
      hro.classify({time, k, 100});
    }
    time += 0.05;
    if (hro.classify({time, 99, 100}).hit) ++late_hits;
  }
  EXPECT_GT(late_hits, 100u);
}

TEST(HroAgeDecay, ComparableToPoissonOnStationaryTraffic) {
  // On IRM-ish traffic the extension must not wreck the bound.
  const auto t = gen::make_trace(gen::TraceClass::kWiki, 20'000, 5);
  HroConfig poisson{.capacity_bytes = 2ULL << 30};
  HroConfig decayed{.capacity_bytes = 2ULL << 30};
  decayed.age_decay_hazard = true;
  Hro a(poisson), b(decayed);
  for (const auto& r : t) {
    a.classify(r);
    b.classify(r);
  }
  EXPECT_NEAR(a.hit_ratio(), b.hit_ratio(), 0.08);
}

}  // namespace
}  // namespace lhr::hazard
