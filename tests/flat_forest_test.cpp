// ml::FlatForest: the compiled inference representation must be *exactly*
// equivalent to Gbdt::predict — same doubles, bit for bit, for every input
// including NaN features — across forest shapes, loss functions, block
// sizes and save/load round trips. EXPECT_EQ on doubles below is
// deliberate: the layout change is only safe to ship because it changes
// nothing numerically.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ml/async_trainer.hpp"
#include "ml/eval.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/simd_dispatch.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lhr {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

struct Labeled {
  ml::Dataset x;
  std::vector<float> y;
};

/// Random batch with `nan_fraction` missing cells and a nonlinear target,
/// so fitted trees exercise both NaN default directions at varied depths.
Labeled make_batch(std::size_t rows, std::size_t dim, double nan_fraction,
                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Labeled out;
  out.x.n_features = dim;
  out.x.values.reserve(rows * dim);
  out.y.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t f = 0; f < dim; ++f) {
      if (rng.next_double() < nan_fraction) {
        out.x.values.push_back(kNaN);
      } else {
        const float v = static_cast<float>(rng.next_double());
        out.x.values.push_back(v);
        acc += (f % 2 == 0) ? v : v * v;
      }
    }
    out.y.push_back(static_cast<float>(acc / static_cast<double>(dim) > 0.3 ? 1.0 : 0.0));
  }
  return out;
}

void expect_exact_equivalence(const ml::Gbdt& model, const ml::Dataset& data) {
  const ml::FlatForest forest(model);
  ASSERT_TRUE(forest.trained());
  EXPECT_EQ(forest.tree_count(), model.tree_count());
  EXPECT_EQ(forest.n_features(), data.n_features);

  // Row path.
  std::vector<double> expected(data.n_rows());
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    expected[i] = model.predict(data.row(i));
    EXPECT_EQ(forest.score_row(data.row(i)), expected[i]) << "row " << i;
    EXPECT_EQ(forest.probability(data.row(i)), model.predict_probability(data.row(i)))
        << "row " << i;
  }

  // Block path, at sizes around and away from kBlockRows (odd sizes cover
  // the partial-block tail).
  std::vector<double> out(data.n_rows());
  for (const std::size_t block : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                  ml::FlatForest::kBlockRows,
                                  ml::FlatForest::kBlockRows + 1, data.n_rows()}) {
    std::fill(out.begin(), out.end(), -1.0);
    for (std::size_t i = 0; i < data.n_rows(); i += block) {
      const std::size_t n = std::min(block, data.n_rows() - i);
      forest.score_block({data.values.data() + i * data.n_features, n * data.n_features},
                         n, {out.data() + i, n});
    }
    for (std::size_t i = 0; i < data.n_rows(); ++i) {
      EXPECT_EQ(out[i], expected[i]) << "block " << block << " row " << i;
    }
  }

  // Dataset convenience overload.
  std::fill(out.begin(), out.end(), -1.0);
  forest.score_block(data, out);
  for (std::size_t i = 0; i < data.n_rows(); ++i) EXPECT_EQ(out[i], expected[i]);
}

TEST(FlatForest, UntrainedModelYieldsEmptyForest) {
  const ml::Gbdt model;
  const ml::FlatForest forest(model);
  EXPECT_FALSE(forest.trained());
  EXPECT_EQ(forest.tree_count(), 0u);
  const ml::FlatForest defaulted;
  EXPECT_FALSE(defaulted.trained());
}

TEST(FlatForest, ExactEquivalenceDeepTrees) {
  const auto batch = make_batch(3'000, 16, 0.2, 101);
  ml::GbdtConfig cfg;
  cfg.num_trees = 20;
  cfg.max_depth = 8;
  cfg.min_child_weight = 1.0;
  ml::Gbdt model;
  model.fit(batch.x, batch.y, cfg);
  expect_exact_equivalence(model, batch.x);
}

TEST(FlatForest, ExactEquivalenceShallowStumps) {
  const auto batch = make_batch(2'000, 8, 0.1, 202);
  ml::GbdtConfig cfg;
  cfg.num_trees = 40;
  cfg.max_depth = 1;  // stumps: every tree is a root with two leaves
  ml::Gbdt model;
  model.fit(batch.x, batch.y, cfg);
  expect_exact_equivalence(model, batch.x);
}

TEST(FlatForest, ExactEquivalenceHeavyNaN) {
  // Half the cells missing: the NaN default directions carry the scores.
  const auto batch = make_batch(2'000, 12, 0.5, 303);
  ml::GbdtConfig cfg;
  cfg.num_trees = 15;
  cfg.max_depth = 5;
  ml::Gbdt model;
  model.fit(batch.x, batch.y, cfg);
  expect_exact_equivalence(model, batch.x);

  // Including rows that are entirely missing.
  ml::Dataset all_nan;
  all_nan.n_features = batch.x.n_features;
  all_nan.values.assign(batch.x.n_features * 32, kNaN);
  expect_exact_equivalence(model, all_nan);
}

TEST(FlatForest, ExactEquivalenceLogisticLoss) {
  const auto batch = make_batch(2'500, 10, 0.15, 404);
  ml::GbdtConfig cfg;
  cfg.loss = ml::GbdtLoss::kLogistic;
  cfg.num_trees = 12;
  cfg.max_depth = 4;
  ml::Gbdt model;
  model.fit(batch.x, batch.y, cfg);
  expect_exact_equivalence(model, batch.x);
}

TEST(FlatForest, ExactEquivalenceAfterSaveLoadRoundTrip) {
  const auto batch = make_batch(2'000, 12, 0.2, 505);
  ml::Gbdt model;
  model.fit(batch.x, batch.y, ml::GbdtConfig{});

  std::stringstream buf;
  model.save(buf);
  ml::Gbdt restored;
  restored.load(buf);

  const ml::FlatForest original(model);
  const ml::FlatForest reloaded(restored);
  for (std::size_t i = 0; i < batch.x.n_rows(); ++i) {
    EXPECT_EQ(reloaded.score_row(batch.x.row(i)), original.score_row(batch.x.row(i)));
  }
  expect_exact_equivalence(restored, batch.x);
}

TEST(FlatForest, ScoreBlockRejectsShapeMismatches) {
  const auto batch = make_batch(512, 6, 0.1, 606);
  ml::Gbdt model;
  model.fit(batch.x, batch.y, ml::GbdtConfig{});
  const ml::FlatForest forest(model);

  std::vector<double> out(4);
  const std::vector<float> rows(4 * 6, 0.5f);
  EXPECT_NO_THROW(forest.score_block(rows, 4, out));
  // rows buffer too small for the claimed row count.
  EXPECT_THROW(forest.score_block({rows.data(), 3 * 6}, 4, out), std::invalid_argument);
  // output span doesn't match the row count.
  std::vector<double> short_out(3);
  EXPECT_THROW(forest.score_block(rows, 4, short_out), std::invalid_argument);
  // Dataset with the wrong feature dimension.
  ml::Dataset wrong;
  wrong.n_features = 5;
  wrong.values.assign(5 * 4, 0.5f);
  std::vector<double> out4(4);
  EXPECT_THROW(forest.score_block(wrong, out4), std::invalid_argument);
}

TEST(FlatForest, MemoryBytesIsPositiveForTrainedForest) {
  const auto batch = make_batch(1'000, 8, 0.1, 707);
  ml::Gbdt model;
  model.fit(batch.x, batch.y, ml::GbdtConfig{});
  const ml::FlatForest forest(model);
  EXPECT_GT(forest.memory_bytes(), 0u);
}

TEST(CompiledModel, BundlesGbdtWithItsForest) {
  const auto batch = make_batch(1'500, 8, 0.1, 808);
  ml::Gbdt model;
  model.fit(batch.x, batch.y, ml::GbdtConfig{});
  const ml::CompiledModel compiled(model);  // copy in; the bundle owns both
  ASSERT_TRUE(compiled.forest.trained());
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(compiled.forest.score_row(batch.x.row(i)),
              compiled.gbdt.predict(batch.x.row(i)));
  }
}

// TSan target: readers score through the compiled forest of the live model
// while the background trainer fits and compiles a replacement, then the
// swap happens — mirroring LhrCache's request path exactly.
TEST(FlatForest, ConcurrentScoreDuringAsyncRetrainAndSwap) {
  const auto batch = make_batch(4'000, 8, 0.15, 909);
  ml::GbdtConfig cfg;
  cfg.num_trees = 8;
  cfg.max_depth = 4;

  auto live = std::make_shared<const ml::CompiledModel>([&] {
    ml::Gbdt m;
    m.fit(batch.x, batch.y, cfg);
    return m;
  }());

  ml::AsyncTrainer trainer(2);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t, model = live] {
      std::size_t i = static_cast<std::size_t>(t);
      std::vector<double> block_out(ml::FlatForest::kBlockRows);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto row = batch.x.row(i % batch.x.n_rows());
        ASSERT_EQ(model->forest.score_row(row), model->gbdt.predict(row));
        // Blocked reads race-free too: score a window starting at row 0.
        const std::size_t n = ml::FlatForest::kBlockRows;
        model->forest.score_block({batch.x.values.data(), n * batch.x.n_features}, n,
                                  block_out);
        i += 13;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Labeled retrain = make_batch(4'000, 8, 0.15, 910);
  ASSERT_TRUE(trainer.submit(std::move(retrain.x), std::move(retrain.y), cfg));
  trainer.wait();
  const auto fresh = trainer.collect();
  ASSERT_NE(fresh, nullptr);
  ASSERT_TRUE(fresh->forest.trained());
  live = fresh;  // the swap; in-flight readers keep the old bundle alive

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
}

// ---------------------------------------------------------- SIMD dispatch
// The AVX2 kernel must be *bit-identical* to the scalar reference — not
// "close", identical — for every forest shape and row count, because the
// dispatch decision (cpuid, LHR_SIMD) would otherwise change cache
// admissions between hosts. EXPECT_EQ on doubles throughout.

/// Scores `data` once per forced level and asserts both paths reproduce
/// Gbdt::predict exactly. Exercised at row counts straddling the 16-row
/// SIMD block and the 8-lane groups (tails run the scalar loop inside the
/// kernel — this must be invisible in the output).
void expect_simd_scalar_identical(const ml::Gbdt& model, const ml::Dataset& data) {
  const ml::FlatForest forest(model);
  ASSERT_TRUE(forest.trained());
  const std::size_t n = data.n_rows();

  std::vector<double> scalar_out(n, -1.0), simd_out(n, -2.0);
  {
    const ml::simd::ScopedForceLevel force(ml::simd::Level::kScalar);
    forest.score_block(data, scalar_out);
  }
  {
    const ml::simd::ScopedForceLevel force(ml::simd::Level::kAvx2);
    forest.score_block(data, simd_out);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(simd_out[i], scalar_out[i]) << "row " << i << " of " << n;
    ASSERT_EQ(simd_out[i], model.predict(data.row(i))) << "row " << i << " of " << n;
  }
}

/// Fits one model per forest shape and sweeps both paths over random row
/// counts, including every size in [1, 2*kBlockRows+1] (all the
/// non-multiple-of-8 and non-multiple-of-16 tails).
void run_simd_sweep(const ml::GbdtConfig& cfg, double nan_fraction,
                    std::uint64_t seed) {
  const auto train = make_batch(2'500, 12, nan_fraction, seed);
  ml::Gbdt model;
  model.fit(train.x, train.y, cfg);

  util::Xoshiro256 rng(seed ^ 0x51D0F00DULL);
  std::vector<std::size_t> counts;
  for (std::size_t n = 1; n <= 2 * ml::FlatForest::kBlockRows + 1; ++n) {
    counts.push_back(n);
  }
  for (int i = 0; i < 6; ++i) counts.push_back(64 + rng.next_below(512));

  for (const std::size_t n : counts) {
    const auto batch = make_batch(n, 12, nan_fraction, rng());
    expect_simd_scalar_identical(model, batch.x);
  }
}

TEST(FlatForestSimd, DispatchReportsCoherentState) {
  // Whatever the host, the active level must be one the binary can run.
  const ml::simd::Level level = ml::simd::active_level();
  if (level == ml::simd::Level::kAvx2) {
    EXPECT_TRUE(ml::simd::avx2_compiled());
    EXPECT_TRUE(ml::simd::avx2_runtime());
  }
  EXPECT_STREQ(ml::simd::level_name(ml::simd::Level::kScalar), "scalar");
  EXPECT_STREQ(ml::simd::level_name(ml::simd::Level::kAvx2), "avx2");

  // force_level pins and restores the decision.
  ml::simd::force_level(ml::simd::Level::kScalar);
  EXPECT_EQ(ml::simd::active_level(), ml::simd::Level::kScalar);
  ml::simd::force_level(std::nullopt);
  EXPECT_EQ(ml::simd::active_level(), level);
}

TEST(FlatForestSimd, ForcingAvx2WithoutSupportDegradesToScalar) {
  // On AVX2 hosts this is a no-op check; on others it pins the guarantee
  // that forcing the unavailable level never crashes or changes results.
  const auto batch = make_batch(100, 8, 0.2, 1212);
  ml::Gbdt model;
  model.fit(batch.x, batch.y, ml::GbdtConfig{});
  expect_simd_scalar_identical(model, batch.x);
}

TEST(FlatForestSimd, ExactEquivalenceSweepDeepTrees) {
  if (!ml::simd::avx2_compiled() || !ml::simd::avx2_runtime()) {
    GTEST_SKIP() << "AVX2 unavailable on this host/build; scalar-only";
  }
  ml::GbdtConfig cfg;
  cfg.num_trees = 16;
  cfg.max_depth = 8;
  cfg.min_child_weight = 1.0;
  run_simd_sweep(cfg, 0.2, 1001);
}

TEST(FlatForestSimd, ExactEquivalenceSweepShallowStumps) {
  if (!ml::simd::avx2_compiled() || !ml::simd::avx2_runtime()) {
    GTEST_SKIP() << "AVX2 unavailable on this host/build; scalar-only";
  }
  ml::GbdtConfig cfg;
  cfg.num_trees = 32;
  cfg.max_depth = 1;
  run_simd_sweep(cfg, 0.1, 2002);
}

TEST(FlatForestSimd, ExactEquivalenceSweepHeavyNaN) {
  if (!ml::simd::avx2_compiled() || !ml::simd::avx2_runtime()) {
    GTEST_SKIP() << "AVX2 unavailable on this host/build; scalar-only";
  }
  ml::GbdtConfig cfg;
  cfg.num_trees = 12;
  cfg.max_depth = 5;
  // Half the cells missing: the NaN lane-mask blend carries the walk.
  run_simd_sweep(cfg, 0.5, 3003);
}

TEST(FlatForestSimd, ExactEquivalenceSweepLogisticLoss) {
  if (!ml::simd::avx2_compiled() || !ml::simd::avx2_runtime()) {
    GTEST_SKIP() << "AVX2 unavailable on this host/build; scalar-only";
  }
  ml::GbdtConfig cfg;
  cfg.loss = ml::GbdtLoss::kLogistic;
  cfg.num_trees = 12;
  cfg.max_depth = 4;
  run_simd_sweep(cfg, 0.15, 4004);
}

TEST(FlatForestSimd, AllNaNRowsIdenticalAcrossLevels) {
  if (!ml::simd::avx2_compiled() || !ml::simd::avx2_runtime()) {
    GTEST_SKIP() << "AVX2 unavailable on this host/build; scalar-only";
  }
  const auto train = make_batch(2'000, 10, 0.3, 5005);
  ml::Gbdt model;
  model.fit(train.x, train.y, ml::GbdtConfig{});

  ml::Dataset all_nan;
  all_nan.n_features = 10;
  all_nan.values.assign(10 * 37, kNaN);  // 37: two blocks + a 5-row tail
  expect_simd_scalar_identical(model, all_nan);
}

// ------------------------------------------- threaded predict_many / eval

TEST(GbdtPredictManyThreaded, BitIdenticalAcrossThreadCounts) {
  const auto batch = make_batch(6'000, 10, 0.15, 111);
  ml::Gbdt model;
  model.fit(batch.x, batch.y, ml::GbdtConfig{});

  std::vector<double> serial(batch.x.n_rows());
  model.predict_many(batch.x, serial);

  util::ThreadPool pool(3);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<double> out(batch.x.n_rows());
    model.predict_many(batch.x, out, &pool, threads);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], serial[i]) << "threads=" << threads << " row " << i;
    }
  }
  // Null pool with n_threads > 1: transient pool, same answer.
  std::vector<double> out(batch.x.n_rows());
  model.predict_many(batch.x, out, nullptr, 4);
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], serial[i]);
}

TEST(EvaluateModel, MatchesManualPredictionLoopAndIsThreadInvariant) {
  const auto batch = make_batch(5'000, 10, 0.1, 222);
  ml::Gbdt model;
  model.fit(batch.x, batch.y, ml::GbdtConfig{});

  std::vector<float> manual(batch.x.n_rows());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    manual[i] = static_cast<float>(model.predict_probability(batch.x.row(i)));
  }
  const auto expected = ml::evaluate_binary(manual, batch.y);

  const auto serial = ml::evaluate_model(model, batch.x, batch.y);
  EXPECT_EQ(serial.accuracy, expected.accuracy);
  EXPECT_EQ(serial.auc, expected.auc);
  EXPECT_EQ(serial.brier, expected.brier);

  util::ThreadPool pool(3);
  const auto threaded = ml::evaluate_model(model, batch.x, batch.y, 4, &pool);
  EXPECT_EQ(threaded.accuracy, serial.accuracy);
  EXPECT_EQ(threaded.auc, serial.auc);
  EXPECT_EQ(threaded.brier, serial.brier);

  std::vector<float> short_labels(3);
  EXPECT_THROW(static_cast<void>(ml::evaluate_model(model, batch.x, short_labels)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lhr
