// Tests for the GBDT extensions: logistic loss, feature importance, and
// model serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "ml/gbdt.hpp"
#include "util/rng.hpp"

namespace lhr::ml {
namespace {

Dataset make_dataset(const std::vector<std::vector<float>>& rows) {
  Dataset d;
  d.n_features = rows.empty() ? 0 : rows[0].size();
  for (const auto& row : rows) d.values.insert(d.values.end(), row.begin(), row.end());
  return d;
}

struct Labeled {
  Dataset x;
  std::vector<float> y;
};

Labeled step_data(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(rng.next_double() * 10.0);
    rows.push_back({x});
    y.push_back(x < 5.0f ? 0.0f : 1.0f);
  }
  return {make_dataset(rows), y};
}

// --------------------------------------------------------- logistic loss

TEST(GbdtLogistic, LearnsStepFunctionAsProbability) {
  const auto data = step_data(4'000, 1);
  Gbdt model;
  GbdtConfig cfg;
  cfg.loss = GbdtLoss::kLogistic;
  cfg.num_trees = 25;
  cfg.learning_rate = 0.4;
  model.fit(data.x, data.y, cfg);
  EXPECT_LT(model.predict_probability(std::vector<float>{2.0f}), 0.15);
  EXPECT_GT(model.predict_probability(std::vector<float>{8.0f}), 0.85);
  // Raw output is log-odds: positive side must be a positive logit.
  EXPECT_GT(model.predict(std::vector<float>{8.0f}), 0.0);
  EXPECT_LT(model.predict(std::vector<float>{2.0f}), 0.0);
}

TEST(GbdtLogistic, ProbabilityAlwaysInUnitInterval) {
  const auto data = step_data(1'000, 2);
  Gbdt model;
  GbdtConfig cfg;
  cfg.loss = GbdtLoss::kLogistic;
  cfg.num_trees = 50;
  cfg.learning_rate = 1.0;  // aggressive: still must stay bounded
  model.fit(data.x, data.y, cfg);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    const double p = model.predict_probability(
        std::vector<float>{static_cast<float>(rng.next_double() * 10.0)});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(GbdtLogistic, BaseScoreReflectsClassPrior) {
  // 90% positives => untrained-tree output should sit near logit(0.9).
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 1'000; ++i) {
    rows.push_back({static_cast<float>(rng.next_double())});  // uninformative
    y.push_back(i % 10 == 0 ? 0.0f : 1.0f);
  }
  Gbdt model;
  GbdtConfig cfg;
  cfg.loss = GbdtLoss::kLogistic;
  cfg.num_trees = 1;
  cfg.learning_rate = 0.0;  // keep only the prior
  model.fit(make_dataset(rows), y, cfg);
  EXPECT_NEAR(model.predict_probability(std::vector<float>{0.5f}), 0.9, 0.02);
}

// ----------------------------------------------------- feature importance

TEST(GbdtImportance, IdentifiesInformativeFeature) {
  // Feature 0: noise. Feature 1: the actual signal.
  util::Xoshiro256 rng(5);
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  for (int i = 0; i < 4'000; ++i) {
    const float noise = static_cast<float>(rng.next_double());
    const float signal = static_cast<float>(rng.next_double());
    rows.push_back({noise, signal});
    y.push_back(signal > 0.5f ? 1.0f : 0.0f);
  }
  Gbdt model;
  GbdtConfig cfg;
  cfg.num_trees = 15;
  model.fit(make_dataset(rows), y, cfg);
  const auto importance = model.feature_importance();
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[1], 0.9);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(GbdtImportance, EmptyBeforeTraining) {
  EXPECT_TRUE(Gbdt{}.feature_importance().empty());
}

// --------------------------------------------------------- serialization

TEST(GbdtSerialization, RoundTripPreservesPredictions) {
  const auto data = step_data(2'000, 6);
  Gbdt original;
  GbdtConfig cfg;
  cfg.num_trees = 10;
  original.fit(data.x, data.y, cfg);

  std::stringstream buffer;
  original.save(buffer);
  Gbdt restored;
  restored.load(buffer);

  EXPECT_EQ(restored.tree_count(), original.tree_count());
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::vector<float> x = {static_cast<float>(rng.next_double() * 10.0)};
    EXPECT_FLOAT_EQ(static_cast<float>(restored.predict(x)),
                    static_cast<float>(original.predict(x)));
  }
  EXPECT_EQ(restored.feature_importance().size(),
            original.feature_importance().size());
}

TEST(GbdtSerialization, RoundTripPreservesLogisticMapping) {
  const auto data = step_data(1'000, 8);
  Gbdt original;
  GbdtConfig cfg;
  cfg.loss = GbdtLoss::kLogistic;
  cfg.num_trees = 8;
  original.fit(data.x, data.y, cfg);

  std::stringstream buffer;
  original.save(buffer);
  Gbdt restored;
  restored.load(buffer);
  const std::vector<float> x = {8.0f};
  EXPECT_DOUBLE_EQ(restored.predict_probability(x), original.predict_probability(x));
}

TEST(GbdtSerialization, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "lhr_gbdt_test.model").string();
  const auto data = step_data(500, 9);
  Gbdt original;
  GbdtConfig cfg;
  cfg.num_trees = 3;
  original.fit(data.x, data.y, cfg);
  original.save_file(path);

  Gbdt restored;
  restored.load_file(path);
  EXPECT_EQ(restored.tree_count(), 3u);
  std::filesystem::remove(path);
}

TEST(GbdtSerialization, RejectsGarbage) {
  Gbdt model;
  std::stringstream bad("not-a-model 1 2 3");
  EXPECT_THROW(model.load(bad), std::runtime_error);
  std::stringstream truncated("gbdt-v1 1 0 0.5 3\n2\n");
  EXPECT_THROW(model.load(truncated), std::runtime_error);
  EXPECT_THROW(model.load_file("/nonexistent/model"), std::runtime_error);
}

}  // namespace
}  // namespace lhr::ml
