// Cross-module integration tests: the ordering invariants that make the
// paper's Figure 2 meaningful, exercised end-to-end on synthetic CDN traces.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/lhr_cache.hpp"
#include "core/policy_factory.hpp"
#include "gen/cdn_model.hpp"
#include "hazard/hro.hpp"
#include "opt/bounds.hpp"
#include "sim/engine.hpp"
#include "trace/trace_stats.hpp"

namespace lhr {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new trace::Trace(gen::make_trace(gen::TraceClass::kCdnA, 40'000, 2024));
    // Scale the cache to the reduced trace: ~5% of unique bytes.
    const auto summary = trace::summarize(*trace_);
    capacity_ = static_cast<std::uint64_t>(summary.unique_bytes_gb * 0.05 *
                                           1024.0 * 1024.0 * 1024.0);
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static trace::Trace* trace_;
  static std::uint64_t capacity_;
};

trace::Trace* IntegrationFixture::trace_ = nullptr;
std::uint64_t IntegrationFixture::capacity_ = 0;

TEST_F(IntegrationFixture, EveryPolicyRunsEndToEnd) {
  for (const auto& name : core::all_policy_names()) {
    auto policy = core::make_policy(name, capacity_);
    const auto metrics = sim::simulate(*policy, *trace_);
    EXPECT_EQ(metrics.requests, trace_->size()) << name;
    EXPECT_GE(metrics.object_hit_ratio(), 0.0) << name;
    EXPECT_LE(metrics.object_hit_ratio(), 1.0) << name;
  }
}

TEST_F(IntegrationFixture, BoundsDominateOnlinePolicies) {
  const auto inf = opt::infinite_cap(trace_->requests());
  const auto pfoo = opt::pfoo_l(trace_->requests(), capacity_);

  hazard::Hro hro(hazard::HroConfig{.capacity_bytes = capacity_});
  for (const auto& r : *trace_) hro.classify(r);

  // InfiniteCap dominates everything.
  EXPECT_GE(inf.hit_ratio(), pfoo.hit_ratio());
  EXPECT_GE(inf.hit_ratio(), hro.hit_ratio());

  // Figure 2's core claim: the bounds sit above the online SOTAs.
  for (const auto& name : core::sota_policy_names()) {
    auto policy = core::make_policy(name, capacity_);
    const double ratio = sim::simulate(*policy, *trace_).object_hit_ratio();
    EXPECT_GE(inf.hit_ratio() + 1e-9, ratio) << name;
    EXPECT_GE(hro.hit_ratio() + 0.02, ratio) << name << " vs HRO";
  }
}

TEST_F(IntegrationFixture, LhrIsBelowHro) {
  core::LhrConfig cfg;
  cfg.gbdt.num_trees = 10;
  core::LhrCache lhr(capacity_, cfg);
  const auto metrics = sim::simulate(lhr, *trace_);
  EXPECT_LE(metrics.object_hit_ratio(), lhr.hro_hit_ratio() + 0.02);
}

TEST_F(IntegrationFixture, BeladyVariantsDominateLru) {
  const auto b = opt::belady(trace_->requests(), capacity_);
  const auto bs = opt::belady_size(trace_->requests(), capacity_);
  auto lru = core::make_policy("LRU", capacity_);
  const double lru_ratio = sim::simulate(*lru, *trace_).object_hit_ratio();
  EXPECT_GE(b.hit_ratio() + 0.01, lru_ratio);
  EXPECT_GE(bs.hit_ratio() + 0.01, lru_ratio);
}

TEST_F(IntegrationFixture, MetadataDeductionKeepsResultsFinite) {
  // The learning policies must survive the §7.1 fairness accounting.
  for (const auto& name : {"LRB", "LHR", "Hawkeye"}) {
    auto policy = core::make_policy(name, capacity_);
    sim::SimOptions opts;
    opts.capacity_adjust_interval = 1'000;
    const auto metrics = sim::simulate(*policy, *trace_, opts);
    EXPECT_LE(policy->used_bytes(), policy->capacity_bytes()) << name;
    EXPECT_GT(metrics.requests, 0u) << name;
  }
}

TEST(IntegrationSmall, WanTrafficOrderingMatchesHitOrdering) {
  // For (roughly) size-independent hit patterns, a higher byte hit ratio
  // means less WAN traffic. Check the accounting is consistent.
  const auto t = gen::make_trace(gen::TraceClass::kCdnC, 20'000, 5);
  const std::uint64_t capacity = 64ULL << 30;

  auto lru = core::make_policy("LRU", capacity);
  auto blru = core::make_policy("B-LRU", capacity);
  const auto m_lru = sim::simulate(*lru, t);
  const auto m_blru = sim::simulate(*blru, t);

  EXPECT_DOUBLE_EQ(m_lru.wan_traffic_bytes(),
                   m_lru.bytes_requested - m_lru.bytes_hit);
  EXPECT_DOUBLE_EQ(m_blru.wan_traffic_bytes(),
                   m_blru.bytes_requested - m_blru.bytes_hit);
  EXPECT_GT(m_lru.bytes_requested, 0.0);
}

}  // namespace
}  // namespace lhr
