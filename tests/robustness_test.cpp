// Failure-injection / hostile-input robustness: the inputs a library meets
// in the wild — CRLF trace files, zero-size objects, time going backwards,
// extreme keys — must not crash or corrupt any component.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "core/policy_factory.hpp"
#include "hazard/hro.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

namespace lhr {
namespace {

TEST(Robustness, CrlfTraceFilesParse) {
  const auto path =
      (std::filesystem::temp_directory_path() / "lhr_crlf_test.txt").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "1.0 7 100\r\n2.5 8 200\r\n";
  }
  const auto t = trace::read_trace_file(path);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].size, 200u);
  std::filesystem::remove(path);
}

TEST(Robustness, ScientificNotationTimes) {
  const auto path =
      (std::filesystem::temp_directory_path() / "lhr_sci_test.txt").string();
  {
    std::ofstream out(path);
    out << "1.5e3 1 100\n2e3 2 100\n";
  }
  const auto t = trace::read_trace_file(path);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0].time, 1500.0);
  std::filesystem::remove(path);
}

trace::Trace hostile_trace() {
  trace::Trace t;
  const trace::Key huge = std::numeric_limits<trace::Key>::max();
  // Duplicate timestamps, zero sizes, time going backwards, extreme keys.
  t.push_back({10.0, 1, 100});
  t.push_back({10.0, 2, 0});        // zero-size object
  t.push_back({10.0, 1, 100});      // duplicate timestamp re-request
  t.push_back({5.0, huge, 50});     // time goes backwards
  t.push_back({5.0, huge - 1, 1});
  t.push_back({6.0, 1, 100});
  t.push_back({6.0, 2, 0});
  for (int i = 0; i < 200; ++i) {
    t.push_back({6.0 + i * 0.001, static_cast<trace::Key>(i % 7), (i % 3) * 100ull});
  }
  return t;
}

class HostileInput : public ::testing::TestWithParam<std::string> {};

TEST_P(HostileInput, PoliciesSurviveHostileTraces) {
  auto policy = core::make_policy(GetParam(), 10'000);
  const auto t = hostile_trace();
  for (const auto& r : t) {
    (void)policy->access(r);
    ASSERT_LE(policy->used_bytes(), policy->capacity_bytes()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, HostileInput,
                         ::testing::ValuesIn(core::all_policy_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Robustness, HroSurvivesHostileTrace) {
  hazard::Hro hro(hazard::HroConfig{.capacity_bytes = 10'000});
  for (const auto& r : hostile_trace()) {
    const auto d = hro.classify(r);
    ASSERT_GE(d.rate, 0.0);
  }
  EXPECT_LE(hro.hit_ratio(), 1.0);
}

TEST(Robustness, SummaryOfHostileTraceIsFinite) {
  const auto s = trace::summarize(hostile_trace());
  EXPECT_GT(s.total_requests, 0u);
  EXPECT_GE(s.unique_bytes_gb, 0.0);
  EXPECT_GE(s.peak_active_bytes_gb, 0.0);
}

TEST(Robustness, EngineHandlesHostileTrace) {
  auto policy = core::make_policy("LHR", 10'000);
  const auto m = sim::simulate(*policy, hostile_trace());
  EXPECT_EQ(m.requests, hostile_trace().size());
  EXPECT_LE(m.object_hit_ratio(), 1.0);
}

}  // namespace
}  // namespace lhr
