// Open-loop load generation + CdnServer::replay_open_loop.
//
// Two properties carry the saturation bench: (1) the Poisson arrival
// schedule is a pure function of (seed, rate, input order) — the same sweep
// point replays bit-identically anywhere — and (2) open-loop accounting is
// measurement only: it must not change a single caching decision relative
// to the classic replay of the same trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "bench/load_gen.hpp"
#include "gen/cdn_model.hpp"
#include "policies/lru.hpp"
#include "server/cdn_server.hpp"
#include "server/sharded_cache.hpp"
#include "trace/trace.hpp"

namespace lhr {
namespace {

trace::Trace test_trace() { return gen::make_trace(gen::TraceClass::kCdnA, 10'000, 7); }

std::unique_ptr<server::ShardedCache> make_sharded_lru(std::uint64_t capacity) {
  return std::make_unique<server::ShardedCache>(16, capacity, [](std::uint64_t cap) {
    return std::make_unique<policy::Lru>(cap);
  });
}

TEST(PoissonSchedule, DeterministicGivenSeedAndRate) {
  const auto base = test_trace();
  const bench::LoadGenConfig cfg{.target_rps = 50'000.0, .seed = 9};
  const trace::Trace a = bench::poisson_schedule(base, cfg);
  const trace::Trace b = bench::poisson_schedule(base, cfg);
  ASSERT_EQ(a.size(), base.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "request " << i;  // bit-identical times included
  }

  // A different seed (or rate) produces a different schedule.
  const trace::Trace c = bench::poisson_schedule(base, {.target_rps = 50'000.0, .seed = 10});
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_differ |= a[i].time != c[i].time;
  EXPECT_TRUE(any_differ);
}

TEST(PoissonSchedule, PreservesKeysAndSizesInOrder) {
  const auto base = test_trace();
  const trace::Trace scheduled =
      bench::poisson_schedule(base, {.target_rps = 10'000.0, .seed = 1});
  ASSERT_EQ(scheduled.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(scheduled[i].key, base[i].key);
    EXPECT_EQ(scheduled[i].size, base[i].size);
  }
  EXPECT_TRUE(scheduled.is_time_ordered());
  EXPECT_GT(scheduled[0].time, 0.0);  // first gap, not t = 0
}

TEST(PoissonSchedule, MeanRateApproachesTarget) {
  const auto base = gen::make_trace(gen::TraceClass::kCdnA, 50'000, 11);
  const double rate = 25'000.0;
  const trace::Trace scheduled =
      bench::poisson_schedule(base, {.target_rps = rate, .seed = 3});
  // n arrivals over ~n/λ seconds; 50k draws pin the mean within a few %.
  const double achieved =
      static_cast<double>(scheduled.size()) / scheduled.duration();
  EXPECT_NEAR(achieved / rate, 1.0, 0.05);
}

TEST(PoissonSchedule, RejectsNonPositiveRate) {
  const auto base = test_trace();
  EXPECT_THROW(static_cast<void>(bench::poisson_schedule(base, {.target_rps = 0.0})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(bench::poisson_schedule(base, {.target_rps = -1.0})),
               std::invalid_argument);
}

TEST(OpenLoopReplay, CachingAggregatesMatchClassicReplay) {
  const trace::Trace scheduled =
      bench::poisson_schedule(test_trace(), {.target_rps = 100'000.0, .seed = 5});
  const std::uint64_t capacity = 64ULL << 20;
  server::ServerConfig cfg;
  cfg.ram_bytes = 4 << 20;

  server::CdnServer baseline(make_sharded_lru(capacity), cfg);
  const auto base = baseline.replay(scheduled, server::ReplayMode::kNormal, 2'000);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    server::CdnServer server(make_sharded_lru(capacity), cfg);
    const auto report = server.replay_open_loop(scheduled, threads, 2'000);
    EXPECT_TRUE(report.open_loop);
    EXPECT_EQ(report.requests, base.requests);
    EXPECT_EQ(report.hits, base.hits);
    EXPECT_EQ(report.bytes_served, base.bytes_served);
    EXPECT_EQ(report.wan_bytes, base.wan_bytes);
  }
}

TEST(OpenLoopReplay, ReportsCoherentOpenLoopColumns) {
  const trace::Trace scheduled =
      bench::poisson_schedule(test_trace(), {.target_rps = 200'000.0, .seed = 6});
  server::ServerConfig cfg;
  cfg.ram_bytes = 4 << 20;
  server::CdnServer server(make_sharded_lru(64ULL << 20), cfg);
  const auto report = server.replay_open_loop(scheduled, 2);

  EXPECT_TRUE(report.open_loop);
  EXPECT_GT(report.offered_rps, 0.0);
  EXPECT_GT(report.achieved_rps, 0.0);
  EXPECT_GT(report.service_avg_us, 0.0);
  // Sojourn includes queueing, so the percentile ladder must be monotone
  // and every sojourn is at least one service time > 0.
  EXPECT_GE(report.sojourn_p99_ms, report.sojourn_p50_ms);
  EXPECT_GE(report.sojourn_p999_ms, report.sojourn_p99_ms);
  EXPECT_GT(report.sojourn_avg_ms, 0.0);
  EXPECT_GE(report.queue_wait_p99_ms, 0.0);
  EXPECT_LE(report.queued_requests, report.requests);
}

TEST(OpenLoopReplay, ClassicReplayReportsAreNotOpenLoop) {
  const auto trace = test_trace();
  server::ServerConfig cfg;
  cfg.ram_bytes = 4 << 20;
  server::CdnServer server(make_sharded_lru(64ULL << 20), cfg);
  const auto report = server.replay(trace, server::ReplayMode::kNormal);
  EXPECT_FALSE(report.open_loop);
  EXPECT_EQ(report.queued_requests, 0u);
}

}  // namespace
}  // namespace lhr
