#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gen/cdn_model.hpp"
#include "gen/zipf.hpp"
#include "hazard/hro.hpp"
#include "policies/lfu_da.hpp"
#include "policies/lru.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace lhr::hazard {
namespace {

trace::Trace zipf_irm_trace(std::size_t n, std::size_t contents, double alpha,
                            std::uint64_t size, std::uint64_t seed) {
  gen::ZipfSampler zipf(contents, alpha);
  util::Xoshiro256 rng(seed);
  trace::Trace t;
  double time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    time += -std::log(std::max(rng.next_double(), 1e-12));
    t.push_back({time, zipf.sample(rng), size});
  }
  return t;
}

double hro_ratio(const trace::Trace& t, const HroConfig& cfg) {
  Hro hro(cfg);
  for (const auto& r : t) hro.classify(r);
  return hro.hit_ratio();
}

TEST(Hro, RejectsInvalidConfig) {
  EXPECT_THROW(Hro(HroConfig{.capacity_bytes = 0}), std::invalid_argument);
  EXPECT_THROW(Hro(HroConfig{.capacity_bytes = 100, .window_unique_bytes_mult = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(Hro(HroConfig{.size_aware = false, .capacity_objects = 0}),
               std::invalid_argument);
}

TEST(Hro, FirstRequestIsAlwaysMiss) {
  Hro hro(HroConfig{.capacity_bytes = 1 << 20});
  const auto d = hro.classify({1.0, 42, 100});
  EXPECT_FALSE(d.hit);
  EXPECT_TRUE(d.first_ever);
}

TEST(Hro, OneHitWondersNeverHit) {
  Hro hro(HroConfig{.capacity_bytes = 1 << 20});
  for (trace::Key k = 0; k < 1000; ++k) {
    EXPECT_FALSE(hro.classify({static_cast<double>(k), k, 500}).hit);
  }
  EXPECT_EQ(hro.hits(), 0u);
}

TEST(Hro, HotContentHitsWhenCacheIsLarge) {
  Hro hro(HroConfig{.capacity_bytes = 1 << 20});
  for (int i = 0; i < 100; ++i) {
    hro.classify({static_cast<double>(i), 1, 100});
  }
  // After the first request, every request to the single tracked content
  // must be classified a hit (it trivially tops the ranking).
  EXPECT_EQ(hro.hits(), 99u);
}

TEST(Hro, PrefersDenseContents) {
  // 15 small hot contents (density 1/100) fill the 1500-byte capacity; the
  // big, less dense content is entirely below the knapsack boundary and
  // must be classified a miss.
  Hro hro(HroConfig{.capacity_bytes = 1500, .window_unique_bytes_mult = 1000.0});
  std::uint64_t small_hits = 0, big_hits = 0;
  for (int i = 0; i < 200; ++i) {
    const double t = i * 1.0;
    for (trace::Key k = 1; k <= 15; ++k) {
      if (hro.classify({t + 0.01 * static_cast<double>(k), k, 100}).hit) ++small_hits;
    }
    if (i % 2 == 0) {
      if (hro.classify({t + 0.5, 99, 1400}).hit) ++big_hits;  // sparse, big
    }
  }
  EXPECT_GT(small_hits, 15u * 150u);
  EXPECT_LT(big_hits, 10u);
}

TEST(Hro, UpperBoundsOnlinePoliciesOnIrmTraces) {
  // Proposition A.1, checked empirically: HRO's hit ratio dominates LRU and
  // LFU-DA on stationary Zipf/Poisson (IRM) workloads.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto t = zipf_irm_trace(60'000, 2'000, 0.9, 1'000, seed);
    const std::uint64_t capacity = 200 * 1'000;  // 10% of population bytes

    const double hro = hro_ratio(t, HroConfig{.capacity_bytes = capacity});

    policy::Lru lru(capacity);
    const double lru_ratio = sim::simulate(lru, t).object_hit_ratio();
    policy::LfuDa lfu(capacity);
    const double lfu_ratio = sim::simulate(lfu, t).object_hit_ratio();

    EXPECT_GE(hro, lru_ratio - 0.01) << "seed " << seed;
    EXPECT_GE(hro, lfu_ratio - 0.01) << "seed " << seed;
  }
}

TEST(Hro, EqualSizeVariantCountsObjects) {
  // Capacity = 1 object. The hot content (1 req/s) owns the prefix; the
  // cold one (1 req / 10 s) sits below the boundary and misses.
  Hro hro(HroConfig{.window_unique_bytes_mult = 1000.0, .size_aware = false,
                    .capacity_objects = 1});
  std::uint64_t hot_hits = 0, cold_hits = 0;
  for (int i = 0; i < 200; ++i) {
    if (hro.classify({i * 1.0, 1, 777}).hit) ++hot_hits;
    if (i % 10 == 0) {
      if (hro.classify({i * 1.0 + 0.4, 2, 777}).hit) ++cold_hits;
    }
  }
  EXPECT_GT(hot_hits, 150u);
  EXPECT_LT(cold_hits, 5u);
}

TEST(Hro, WindowRollDropsStaleContents) {
  HroConfig cfg{.capacity_bytes = 1000, .window_unique_bytes_mult = 1.0};
  cfg.retention_windows = 1;  // drop anything idle for one full window
  Hro hro(cfg);
  // Fill window 1 with contents 1..10 (unique bytes 10*100 = 1000 => roll).
  for (trace::Key k = 1; k <= 10; ++k) {
    hro.classify({static_cast<double>(k), k, 100});
  }
  EXPECT_EQ(hro.window_index(), 1u);
  EXPECT_TRUE(hro.window_just_closed());
  // Window 2 uses different contents; after it rolls, window-1 contents
  // must be dropped from tracking.
  for (trace::Key k = 101; k <= 110; ++k) {
    hro.classify({100.0 + static_cast<double>(k), k, 100});
  }
  EXPECT_EQ(hro.window_index(), 2u);
  EXPECT_LE(hro.tracked_contents(), 10u);
}

TEST(Hro, MemoryIsBounded) {
  HroConfig cfg{.capacity_bytes = 100'000, .window_unique_bytes_mult = 2.0};
  Hro hro(cfg);
  util::Xoshiro256 rng(55);
  for (int i = 0; i < 100'000; ++i) {
    hro.classify({i * 1.0, rng.next_below(1 << 20), 1 + rng.next_below(2000)});
  }
  // Tracked contents are bounded by roughly two windows' worth of uniques.
  EXPECT_LT(hro.memory_bytes(), 10u * 1024 * 1024);
  EXPECT_GT(hro.window_index(), 10u);
}

TEST(Hro, TighterThanInfiniteCapOnMixedTrace) {
  const auto t = gen::make_trace(gen::TraceClass::kCdnA, 30'000, 17);
  std::uint64_t re_requests = 0;
  {
    std::unordered_map<trace::Key, bool> seen;
    for (const auto& r : t) re_requests += !seen.insert({r.key, true}).second;
  }
  Hro hro(HroConfig{.capacity_bytes = 4ULL << 30});
  for (const auto& r : t) hro.classify(r);
  // HRO <= InfiniteCap (first requests can never hit).
  EXPECT_LE(hro.hits(), re_requests);
}

}  // namespace
}  // namespace lhr::hazard
