// Multi-tier fabric tests: determinism across replay worker counts (with
// and without active fault schedules on the inter-tier links), rendezvous
// routing stability under node add/remove, the cross-tier
// traffic-conservation invariant, and agreement of the merged end-to-end
// latency quantiles with util::exact_percentile.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "policies/lru.hpp"
#include "server/fabric.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lhr::server {
namespace {

/// A deterministic skewed workload with full control over timestamps (so
/// fault windows land where the test expects): 80% of requests draw from a
/// hot set of 100 keys, the rest from a 5000-key tail; sizes 1-101 KiB.
trace::Trace make_test_trace(std::size_t n, std::uint64_t seed,
                             double duration_s = 1000.0) {
  trace::Trace t;
  util::Xoshiro256 rng(seed);
  const double dt = duration_s / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool hot = rng.next_double() < 0.8;
    const trace::Key key =
        hot ? rng.next_below(100) : 100 + rng.next_below(5000);
    const std::uint64_t size = 1024 + rng.next_below(100 * 1024);
    t.push_back(trace::Request{static_cast<double>(i) * dt, key, size});
  }
  return t;
}

FabricConfig::PolicyFactory lru_factory() {
  return [](std::uint64_t capacity) {
    return std::make_unique<policy::Lru>(capacity);
  };
}

/// 4-edge / 2-regional / 8-shard fabric with caches small enough that every
/// tier sees real misses and evictions on the test trace.
FabricConfig base_config() {
  FabricConfig cfg;
  cfg.edge_nodes = 4;
  cfg.regional_nodes = 2;
  cfg.shards_per_node = 8;
  cfg.edge_capacity_bytes = 4ULL << 20;
  cfg.regional_capacity_bytes = 16ULL << 20;
  cfg.edge_policy = lru_factory();
  cfg.regional_policy = lru_factory();
  cfg.edge_server.ram_bytes = 1ULL << 20;
  cfg.regional_server.ram_bytes = 1ULL << 20;
  cfg.seed = 2027;
  return cfg;
}

/// Replays a fresh fabric built from `cfg` (cache state persists across
/// replay calls, so cross-thread-count comparisons need a clean build).
FabricReport replay_fresh(const FabricConfig& cfg, const trace::Trace& t,
                          std::size_t threads) {
  CdnFabric fabric(cfg);
  return fabric.replay(t, threads);
}

TEST(Fabric, ThreeTierByteIdenticalAcrossThreadCounts) {
  const trace::Trace t = make_test_trace(20'000, 7);
  const FabricConfig cfg = base_config();
  const std::string baseline = replay_fresh(cfg, t, 1).canonical_summary();
  EXPECT_NE(baseline.find("conservation: ok"), std::string::npos) << baseline;
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const FabricReport r = replay_fresh(cfg, t, threads);
    EXPECT_EQ(r.replay_threads, threads);
    EXPECT_EQ(r.canonical_summary(), baseline) << "threads=" << threads;
  }
}

TEST(Fabric, ByteIdenticalUnderActiveFaultSchedules) {
  const trace::Trace t = make_test_trace(20'000, 11);
  FabricConfig cfg = base_config();
  // Regional -> origin link: lognormal latency, an outage, a flaky-error
  // window and a slowdown, with timeouts + retries in play.
  cfg.regional_server.origin_profile.kind = OriginLatencyKind::kLognormal;
  cfg.regional_server.origin_profile.sigma = 0.5;
  cfg.regional_server.fetch.timeout_s = 0.5;
  cfg.regional_server.fetch.retry_budget = 2;
  cfg.regional_server.fault_schedule =
      FaultSchedule::parse("outage:100-200;error:300-600@0.5;slow:700-900@x4");
  // Edge -> regional link: its own outage window plus retry policy.
  cfg.link_fetch.timeout_s = 0.25;
  cfg.link_fetch.retry_budget = 1;
  cfg.link_faults = FaultSchedule::parse("outage:400-450");

  const FabricReport baseline = replay_fresh(cfg, t, 1);
  // The schedules must actually bite, or this test proves nothing.
  EXPECT_GT(baseline.link_failures, 0u);
  EXPECT_GT(baseline.edge.stale_serves + baseline.edge.failed_requests, 0u);
  EXPECT_GT(baseline.regional.stale_serves + baseline.regional.failed_requests, 0u);
  EXPECT_TRUE(baseline.traffic_conserved()) << baseline.conservation_error;

  const std::string canonical = baseline.canonical_summary();
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(replay_fresh(cfg, t, threads).canonical_summary(), canonical)
        << "threads=" << threads;
  }
}

TEST(Fabric, TwoTierByteIdenticalAndConserving) {
  const trace::Trace t = make_test_trace(15'000, 13);
  FabricConfig cfg = base_config();
  cfg.regional_nodes = 0;
  cfg.regional_policy = nullptr;
  // With no regional tier the edge's own origin machinery is the last hop;
  // put a fault schedule on it to exercise the degenerate topology hard.
  cfg.edge_server.fetch.timeout_s = 0.5;
  cfg.edge_server.fetch.retry_budget = 1;
  cfg.edge_server.fault_schedule = FaultSchedule::parse("error:200-500@0.5");

  const FabricReport baseline = replay_fresh(cfg, t, 1);
  EXPECT_EQ(baseline.regional.nodes, 0u);
  EXPECT_EQ(baseline.regional.requests, 0u);
  EXPECT_EQ(baseline.link_body_fetches, 0u);
  EXPECT_EQ(baseline.regional_lookups, 0u);
  EXPECT_GT(baseline.edge.retries, 0u);
  EXPECT_TRUE(baseline.traffic_conserved()) << baseline.conservation_error;
  // The edge tier faces the origin directly.
  EXPECT_EQ(baseline.origin_body_fetches, baseline.edge.body_fetches);

  const std::string canonical = baseline.canonical_summary();
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(replay_fresh(cfg, t, threads).canonical_summary(), canonical)
        << "threads=" << threads;
  }
}

TEST(Fabric, TrafficConservationLedgersBalance) {
  const trace::Trace t = make_test_trace(20'000, 17);
  const FabricReport r = replay_fresh(base_config(), t, 4);
  ASSERT_TRUE(r.traffic_conserved()) << r.conservation_error;

  // Spelled-out invariants (the acceptance criteria of the fabric):
  // edge misses become exactly the link's body fetches...
  EXPECT_EQ(r.edge.body_fetches,
            r.edge.requests - r.edge.cache_hits + r.edge.refetches);
  EXPECT_EQ(r.edge.body_fetches, r.link_body_fetches);
  // ...which (fault-free) all become regional lookups...
  EXPECT_EQ(r.link_failures, 0u);
  EXPECT_EQ(r.link_body_fetches, r.regional.requests);
  // ...and regional misses are the origin fetches attempted.
  EXPECT_EQ(r.regional.body_fetches,
            r.regional.requests - r.regional.cache_hits + r.regional.refetches);
  EXPECT_EQ(r.regional.body_fetches, r.origin_body_fetches);
  // Bytes the edges pulled are bytes the regional tier served.
  EXPECT_EQ(r.edge.upstream_bytes, r.regional.bytes_served);
  // Every request produced exactly one end-to-end latency sample, and every
  // request was routed to some edge node.
  EXPECT_EQ(r.e2e_latency.count(), r.requests);
  std::uint64_t routed = 0;
  for (const std::uint64_t n : r.edge.node_requests) {
    EXPECT_GT(n, 0u);  // HRW should not starve any of 4 nodes on 20k reqs
    routed += n;
  }
  EXPECT_EQ(routed, r.requests);
}

TEST(Fabric, RendezvousRoutingIsStableUnderNodeAddRemove) {
  FabricConfig cfg4 = base_config();
  FabricConfig cfg5 = base_config();
  FabricConfig cfg3 = base_config();
  cfg5.edge_nodes = 5;
  cfg3.edge_nodes = 3;
  const CdnFabric f4(cfg4);
  const CdnFabric f5(cfg5);
  const CdnFabric f3(cfg3);

  constexpr std::size_t kKeys = 20'000;
  std::size_t moved_on_add = 0;
  std::size_t moved_on_remove = 0;
  for (trace::Key key = 0; key < kKeys; ++key) {
    const std::size_t e4 = f4.edge_of(key);
    const std::size_t e5 = f5.edge_of(key);
    if (e4 != e5) {
      // Adding a node may only pull keys onto the NEW node.
      EXPECT_EQ(e5, 4u) << "key " << key << " moved " << e4 << "->" << e5;
      ++moved_on_add;
    }
    const std::size_t e3 = f3.edge_of(key);
    if (e3 != e4) {
      // Removing the last node may only move keys that LIVED on it.
      EXPECT_EQ(e4, 3u) << "key " << key << " moved " << e4 << "->" << e3;
      ++moved_on_remove;
    }
  }
  // HRW moves ~1/5 of keys on add (4 -> 5 nodes), ~1/4 on remove (4 -> 3).
  EXPECT_NEAR(static_cast<double>(moved_on_add) / kKeys, 0.2, 0.05);
  EXPECT_NEAR(static_cast<double>(moved_on_remove) / kKeys, 0.25, 0.05);
}

TEST(Fabric, E2eQuantilesAgreeWithExactPercentile) {
  const trace::Trace t = make_test_trace(10'000, 19);
  CdnFabric fabric(base_config());
  std::vector<double> latencies;
  latencies.reserve(t.size());
  const FabricReport r = fabric.replay(
      t, 1, [&latencies](const trace::Request&, double latency_s) {
        latencies.push_back(latency_s);
      });
  ASSERT_EQ(latencies.size(), r.requests);
  // The merged log-bucketed histogram agrees with the exact nearest-rank
  // percentile within one bucket's relative error (~2% at 128/decade; 6%
  // leaves margin at distribution knees).
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact = util::exact_percentile(latencies, q);
    const double approx = r.e2e_latency.quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 0.06) << "q=" << q;
  }
  EXPECT_NEAR(r.e2e_p50_ms, util::exact_percentile(latencies, 0.5) * 1e3,
              0.06 * r.e2e_p50_ms);
  EXPECT_NEAR(r.e2e_p99_ms, util::exact_percentile(latencies, 0.99) * 1e3,
              0.06 * r.e2e_p99_ms);
}

TEST(Fabric, SpecParserRoundTrips) {
  const FabricSpec spec = parse_fabric_spec(
      "edge=4xLHR@1;regional=2xLRU@8;shards=32;link-rtt-ms=2.5;link-gbps=25");
  EXPECT_EQ(spec.edge.nodes, 4u);
  EXPECT_EQ(spec.edge.policy, "LHR");
  EXPECT_DOUBLE_EQ(spec.edge.capacity_gb, 1.0);
  EXPECT_EQ(spec.regional.nodes, 2u);
  EXPECT_EQ(spec.regional.policy, "LRU");
  EXPECT_DOUBLE_EQ(spec.regional.capacity_gb, 8.0);
  EXPECT_EQ(spec.shards, 32u);
  EXPECT_DOUBLE_EQ(spec.link_rtt_ms, 2.5);
  EXPECT_DOUBLE_EQ(spec.link_gbps, 25.0);

  // Defaults survive a partial spec; regional=0 selects two-tier.
  const FabricSpec partial = parse_fabric_spec("edge=2xFIFO;regional=0");
  EXPECT_EQ(partial.edge.nodes, 2u);
  EXPECT_EQ(partial.edge.policy, "FIFO");
  EXPECT_EQ(partial.regional.nodes, 0u);
  EXPECT_EQ(partial.shards, 16u);

  // An empty spec is the default topology, not an error.
  const FabricSpec dflt = parse_fabric_spec("");
  EXPECT_EQ(dflt.edge.nodes, 4u);
  EXPECT_EQ(dflt.edge.policy, "LHR");

  EXPECT_THROW(parse_fabric_spec("edge=0"), std::invalid_argument);
  EXPECT_THROW(parse_fabric_spec("edge=2xLRU;shards=0"), std::invalid_argument);
  EXPECT_THROW(parse_fabric_spec("edge=2xLRU@0"), std::invalid_argument);
  EXPECT_THROW(parse_fabric_spec("edge=2xLRU;link-gbps=-1"), std::invalid_argument);
  EXPECT_THROW(parse_fabric_spec("bogus"), std::invalid_argument);
}

TEST(Fabric, ConstructorValidatesConfig) {
  FabricConfig cfg = base_config();
  cfg.edge_policy = nullptr;
  EXPECT_THROW(CdnFabric{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.edge_nodes = 0;
  EXPECT_THROW(CdnFabric{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.shards_per_node = 0;
  EXPECT_THROW(CdnFabric{cfg}, std::invalid_argument);
  cfg = base_config();
  cfg.regional_policy = nullptr;  // required only because regional_nodes > 0
  EXPECT_THROW(CdnFabric{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace lhr::server
