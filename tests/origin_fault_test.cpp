// Origin resilience layer tests: profile/schedule parsing, FetchPolicy
// retry/backoff/timeout/hedging semantics, serve-stale-on-error at the
// CdnServer level, and — the headline guarantee — byte-identical
// fault-injected replay_concurrent aggregates at every thread count.
// The concurrency tests here run under TSan in CI alongside
// server_concurrency_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/cdn_model.hpp"
#include "policies/lru.hpp"
#include "server/cdn_server.hpp"
#include "server/origin.hpp"
#include "server/sharded_cache.hpp"

namespace lhr::server {
namespace {

constexpr double kRtt = 0.2;

OriginProfile fixed_profile() {
  OriginProfile p;
  p.rtt_s = kRtt;
  p.gbps = 1000.0;  // transfer time negligible next to the RTT
  return p;
}

FaultSchedule outage(double start, double end) {
  return FaultSchedule({{FaultEpisode::Kind::kOutage, start, end, 1.0, 1.0}});
}

// ------------------------------------------------------------------ parsing

TEST(OriginProfileParse, KindsAndKeys) {
  const auto fixed = parse_origin_profile("fixed");
  EXPECT_EQ(fixed.profile.kind, OriginLatencyKind::kFixed);

  const auto full = parse_origin_profile(
      "lognormal:sigma=0.5,rtt=0.1,gbps=4,seed=99,timeout=0.25,retries=3,"
      "backoff=0.02,cap=0.5,jitter=0.25,hedge=0.08,grace=7200");
  EXPECT_EQ(full.profile.kind, OriginLatencyKind::kLognormal);
  EXPECT_DOUBLE_EQ(full.profile.sigma, 0.5);
  EXPECT_DOUBLE_EQ(full.profile.rtt_s, 0.1);
  EXPECT_DOUBLE_EQ(full.profile.gbps, 4.0);
  EXPECT_EQ(full.profile.seed, 99u);
  EXPECT_DOUBLE_EQ(full.fetch.timeout_s, 0.25);
  EXPECT_EQ(full.fetch.retry_budget, 3u);
  EXPECT_DOUBLE_EQ(full.fetch.backoff_base_s, 0.02);
  EXPECT_DOUBLE_EQ(full.fetch.backoff_cap_s, 0.5);
  EXPECT_DOUBLE_EQ(full.fetch.backoff_jitter, 0.25);
  EXPECT_DOUBLE_EQ(full.fetch.hedge_delay_s, 0.08);
  EXPECT_DOUBLE_EQ(full.fetch.stale_grace_s, 7200.0);

  // The empty spec is the default (fixed, infallible-compatible) profile.
  const auto empty = parse_origin_profile("");
  EXPECT_EQ(empty.profile.kind, OriginLatencyKind::kFixed);
  EXPECT_DOUBLE_EQ(empty.fetch.timeout_s, 0.0);
}

TEST(OriginProfileParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_origin_profile("pareto"), std::invalid_argument);
  EXPECT_THROW((void)parse_origin_profile("fixed:sigma"), std::invalid_argument);
  EXPECT_THROW((void)parse_origin_profile("fixed:bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_origin_profile("lognormal:sigma=-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_origin_profile("fixed:jitter=2"), std::invalid_argument);
  EXPECT_THROW((void)parse_origin_profile("fixed:timeout=abc"), std::invalid_argument);
}

TEST(FaultScheduleParse, ClausesAndQueries) {
  const auto schedule =
      FaultSchedule::parse("outage:100-160;error:200-400@0.5;slow:500-800@x4;slow:600-700@2");
  ASSERT_EQ(schedule.episodes().size(), 4u);

  EXPECT_FALSE(schedule.in_outage(99.9));
  EXPECT_TRUE(schedule.in_outage(100.0));  // half-open [start, end)
  EXPECT_TRUE(schedule.in_outage(159.9));
  EXPECT_FALSE(schedule.in_outage(160.0));

  EXPECT_DOUBLE_EQ(schedule.error_prob(300.0), 0.5);
  EXPECT_DOUBLE_EQ(schedule.error_prob(450.0), 0.0);

  EXPECT_DOUBLE_EQ(schedule.slow_factor(550.0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.slow_factor(650.0), 8.0);  // overlaps compound
  EXPECT_DOUBLE_EQ(schedule.slow_factor(900.0), 1.0);

  EXPECT_TRUE(FaultSchedule::parse("").empty());
}

TEST(FaultScheduleParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultSchedule::parse("meteor:0-1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("outage:5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("outage:9-3"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("outage:0-1@0.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("error:0-1@1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("slow:0-1@x0"), std::invalid_argument);
}

// -------------------------------------------------------------- FetchPolicy

TEST(FetchPolicy, SucceedsFirstTryWithoutFaults) {
  Origin origin(fixed_profile(), kRtt, 1000.0, FaultSchedule{}, 1);
  FetchPolicyConfig cfg;
  const auto out = FetchPolicy(cfg).fetch(origin, 0, 0.0, 0);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_DOUBLE_EQ(out.latency_s, kRtt);
  EXPECT_DOUBLE_EQ(out.origin_busy_s, kRtt);
  EXPECT_TRUE(out.backoffs.empty());
}

TEST(FetchPolicy, RetryBudgetExhaustionYieldsFailureNotHang) {
  Origin origin(fixed_profile(), kRtt, 1000.0, outage(0.0, 1e12), 1);
  FetchPolicyConfig cfg;
  cfg.retry_budget = 3;
  cfg.backoff_base_s = 0.05;
  cfg.backoff_cap_s = 0.15;
  cfg.backoff_jitter = 0.0;  // exact arithmetic below
  const auto out = FetchPolicy(cfg).fetch(origin, 0, 0.0, 1000);

  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 4u);  // 1 + retry budget, then a terminal failure
  EXPECT_EQ(out.retries, 3u);
  EXPECT_EQ(out.errors, 4u);  // refused connections count as errors
  EXPECT_EQ(out.timeouts, 0u);
  // Capped exponential backoff: 0.05, 0.10, then capped at 0.15.
  ASSERT_EQ(out.backoffs.size(), 3u);
  EXPECT_DOUBLE_EQ(out.backoffs[0], 0.05);
  EXPECT_DOUBLE_EQ(out.backoffs[1], 0.10);
  EXPECT_DOUBLE_EQ(out.backoffs[2], 0.15);
  // Total time: 4 refused connections (1 RTT each) + the backoffs.
  EXPECT_NEAR(out.latency_s, 4 * kRtt + 0.30, 1e-12);
}

TEST(FetchPolicy, BackoffJitterIsDeterministicPerStream) {
  FetchPolicyConfig cfg;
  cfg.retry_budget = 4;
  cfg.backoff_jitter = 0.5;

  OriginProfile profile = fixed_profile();
  profile.seed = 7;
  Origin a(profile, kRtt, 1000.0, outage(0.0, 1e12), 4);
  Origin b(profile, kRtt, 1000.0, outage(0.0, 1e12), 4);

  const auto out_a = FetchPolicy(cfg).fetch(a, 2, 0.0, 0);
  const auto out_b = FetchPolicy(cfg).fetch(b, 2, 0.0, 0);
  ASSERT_EQ(out_a.backoffs.size(), 4u);
  ASSERT_EQ(out_b.backoffs.size(), 4u);
  for (std::size_t i = 0; i < out_a.backoffs.size(); ++i) {
    EXPECT_DOUBLE_EQ(out_a.backoffs[i], out_b.backoffs[i]) << "backoff " << i;
    // Jitter keeps each delay within [1-j, 1] of the nominal exponential.
    const double nominal = std::min(cfg.backoff_cap_s,
                                    cfg.backoff_base_s * std::pow(2.0, double(i)));
    EXPECT_LE(out_a.backoffs[i], nominal + 1e-12);
    EXPECT_GE(out_a.backoffs[i], (1.0 - cfg.backoff_jitter) * nominal - 1e-12);
  }

  // Different streams draw different jitter (independent shard sequences).
  Origin c(profile, kRtt, 1000.0, outage(0.0, 1e12), 4);
  const auto out_c = FetchPolicy(cfg).fetch(c, 3, 0.0, 0);
  bool any_different = false;
  for (std::size_t i = 0; i < out_c.backoffs.size(); ++i) {
    any_different = any_different || out_c.backoffs[i] != out_a.backoffs[i];
  }
  EXPECT_TRUE(any_different);
}

TEST(FetchPolicy, TimeoutConvertsSlowAttemptsIntoRetries) {
  // Slow window multiplies latency past the timeout; the attempt charges
  // exactly the timeout and retries.
  FaultSchedule slow({{FaultEpisode::Kind::kSlow, 0.0, 10.0, 1.0, 100.0}});
  Origin origin(fixed_profile(), kRtt, 1000.0, std::move(slow), 1);
  FetchPolicyConfig cfg;
  cfg.timeout_s = 0.5;
  cfg.retry_budget = 1;
  cfg.backoff_jitter = 0.0;
  const auto out = FetchPolicy(cfg).fetch(origin, 0, 0.0, 0);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.timeouts, 2u);
  EXPECT_EQ(out.errors, 0u);
  EXPECT_NEAR(out.latency_s, 2 * cfg.timeout_s + cfg.backoff_base_s, 1e-12);
}

TEST(FetchPolicy, RetryStraddlesEpisodeBoundaryAndSucceeds) {
  // The first attempt hits the tail of an outage; the backoff pushes the
  // retry past the boundary, where it succeeds: graceful recovery, not a
  // failed request.
  Origin origin(fixed_profile(), kRtt, 1000.0, outage(0.0, 0.1), 1);
  FetchPolicyConfig cfg;
  cfg.retry_budget = 2;
  cfg.backoff_base_s = 0.05;
  cfg.backoff_jitter = 0.0;
  const auto out = FetchPolicy(cfg).fetch(origin, 0, 0.05, 0);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.retries, 1u);
  EXPECT_EQ(out.errors, 1u);
  // Failed attempt (1 RTT) + backoff + successful attempt.
  EXPECT_NEAR(out.latency_s, kRtt + 0.05 + kRtt, 1e-12);
}

TEST(FetchPolicy, HedgeCancelsTheLoserExactlyOnce) {
  // No faults: primary and hedge both succeed; the primary (issued first)
  // wins and the hedge is cancelled exactly once.
  Origin origin(fixed_profile(), kRtt, 1000.0, FaultSchedule{}, 1);
  FetchPolicyConfig cfg;
  cfg.hedge_delay_s = 0.05;  // < kRtt, so the hedge fires
  const auto out = FetchPolicy(cfg).fetch(origin, 0, 0.0, 0);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.hedges, 1u);
  EXPECT_EQ(out.hedge_cancels, 1u);  // exactly once
  EXPECT_EQ(out.errors, 0u);
  EXPECT_DOUBLE_EQ(out.latency_s, kRtt);  // winner's completion time
  // Cancelled hedge consumed origin time only until the cancellation point.
  EXPECT_NEAR(out.origin_busy_s, kRtt + (kRtt - cfg.hedge_delay_s), 1e-12);
}

TEST(FetchPolicy, HedgeWinsWhenPrimaryIsSlowedAndCancelsPrimary) {
  // A slow window covers the primary's issue time but ends before the hedge
  // is issued: the hedge completes first and the still-in-flight primary is
  // the one cancelled — again exactly once.
  FaultSchedule slow({{FaultEpisode::Kind::kSlow, 0.0, 0.04, 1.0, 10.0}});
  Origin origin(fixed_profile(), kRtt, 1000.0, std::move(slow), 1);
  FetchPolicyConfig cfg;
  cfg.hedge_delay_s = 0.05;
  const auto out = FetchPolicy(cfg).fetch(origin, 0, 0.0, 0);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.hedges, 1u);
  EXPECT_EQ(out.hedge_cancels, 1u);
  // Winner: hedge issued at 0.05 completing at 0.05 + kRtt.
  EXPECT_NEAR(out.latency_s, cfg.hedge_delay_s + kRtt, 1e-12);
}

TEST(FetchPolicy, HedgeLoserThatAlreadyFailedIsNotCancelled) {
  // An error window covers the primary but not the hedge: the primary
  // completes (in failure) before the hedge wins, so nothing is in flight
  // to cancel.
  FaultSchedule errors({{FaultEpisode::Kind::kError, 0.0, 0.04, 1.0, 1.0}});
  Origin origin(fixed_profile(), kRtt, 1000.0, std::move(errors), 1);
  FetchPolicyConfig cfg;
  cfg.hedge_delay_s = 0.05;
  const auto out = FetchPolicy(cfg).fetch(origin, 0, 0.0, 0);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.hedges, 1u);
  EXPECT_EQ(out.hedge_cancels, 0u);
  EXPECT_EQ(out.errors, 1u);  // the failed primary is accounted as an error
}

// ------------------------------------------------------- CdnServer serving

ServerConfig resilient_config() {
  ServerConfig cfg;
  cfg.ram_bytes = 1 << 20;
  cfg.freshness_ttl_s = 10.0;
  cfg.revalidate_change_prob = 0.0;  // isolate staleness from refetch churn
  cfg.fetch.stale_grace_s = 100.0;
  cfg.fetch.retry_budget = 1;
  cfg.fetch.backoff_base_s = 0.01;
  return cfg;
}

TEST(CdnServerResilience, ServesStaleWithinGraceWindowOnOriginFailure) {
  ServerConfig cfg = resilient_config();
  cfg.fault_schedule = outage(12.0, 1e12);  // origin dies at t=12 forever

  CdnServer server(std::make_unique<policy::Lru>(1 << 20), cfg);
  trace::Trace t;
  t.push_back({0.0, 1, 1000});    // miss, fetched before the outage
  t.push_back({15.0, 1, 1000});   // stale (age 15 > ttl 10), within grace
  t.push_back({150.0, 1, 1000});  // stale beyond ttl+grace=110: 5xx
  const auto report = server.replay(t, ReplayMode::kNormal);

  EXPECT_EQ(report.requests, 3u);
  EXPECT_EQ(report.stale_serves, 1u);
  EXPECT_EQ(report.failed_requests, 1u);
  EXPECT_EQ(report.hits, 1u);  // the admit miss is not a hit; the stale serve is
  // The 5xx served no bytes.
  EXPECT_EQ(report.bytes_served, 2000u);
  // Only the initial miss reached the origin successfully.
  EXPECT_EQ(report.wan_bytes, 1000u);
  EXPECT_GT(report.origin_retries, 0u);
}

TEST(CdnServerResilience, MissDuringOutageFailsInsteadOfHanging) {
  ServerConfig cfg = resilient_config();
  cfg.fault_schedule = outage(0.0, 1e12);

  CdnServer server(std::make_unique<policy::Lru>(1 << 20), cfg);
  trace::Trace t;
  t.push_back({0.0, 1, 1000});
  t.push_back({1.0, 2, 500});
  const auto report = server.replay(t, ReplayMode::kNormal);

  EXPECT_EQ(report.failed_requests, 2u);
  EXPECT_EQ(report.hits, 0u);
  EXPECT_EQ(report.bytes_served, 0u);
  EXPECT_EQ(report.wan_bytes, 0u);
  // Each miss exhausted its retry budget: 1 + retry_budget attempts.
  EXPECT_EQ(report.origin_fetches, 2u);
  EXPECT_EQ(report.origin_retries, 2u);
  EXPECT_EQ(report.origin_errors, 4u);
}

TEST(CdnServerResilience, DefaultConfigKeepsTheInfallibleOrigin) {
  ServerConfig cfg;
  cfg.ram_bytes = 1 << 20;
  CdnServer server(std::make_unique<policy::Lru>(8 << 20), cfg);
  const auto trace = gen::make_trace(gen::TraceClass::kCdnA, 5'000, 11);
  const auto report = server.replay(trace, ReplayMode::kNormal);

  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.stale_serves, 0u);
  EXPECT_EQ(report.origin_retries, 0u);
  EXPECT_EQ(report.origin_timeouts, 0u);
  EXPECT_EQ(report.origin_hedges, 0u);
  EXPECT_GT(report.origin_fetches, 0u);  // every miss went through the layer
  EXPECT_GT(report.fetch_p99_ms, 0.0);
}

// ------------------------------------------- concurrent replay determinism

ServerConfig fault_injected_config(double duration) {
  ServerConfig cfg;
  cfg.ram_bytes = 4 << 20;
  cfg.freshness_ttl_s = duration / 10.0;  // staleness + revalidation traffic
  cfg.origin_profile.kind = OriginLatencyKind::kLognormal;
  cfg.origin_profile.sigma = 0.5;
  cfg.fetch.timeout_s = 0.25;
  cfg.fetch.retry_budget = 3;
  cfg.fetch.hedge_delay_s = 0.08;
  cfg.fetch.stale_grace_s = duration;
  cfg.fault_schedule = FaultSchedule(
      {{FaultEpisode::Kind::kOutage, 0.10 * duration, 0.20 * duration, 1.0, 1.0},
       {FaultEpisode::Kind::kError, 0.30 * duration, 0.50 * duration, 0.5, 1.0},
       {FaultEpisode::Kind::kSlow, 0.60 * duration, 0.80 * duration, 1.0, 8.0}});
  return cfg;
}

std::unique_ptr<ShardedCache> sharded_lru(std::uint64_t capacity) {
  return std::make_unique<ShardedCache>(16, capacity, [](std::uint64_t cap) {
    return std::make_unique<policy::Lru>(cap);
  });
}

TEST(CdnServerResilience, FaultInjectedAggregatesIdenticalAcrossThreadCounts) {
  const auto trace = gen::make_trace(gen::TraceClass::kCdnA, 20'000, 7);
  const double duration = trace.duration();
  const std::uint64_t capacity = 64ULL << 20;

  CdnServer baseline(sharded_lru(capacity), fault_injected_config(duration));
  const auto base = baseline.replay(trace, ReplayMode::kMax);
  // The schedule actually bites in this replay — otherwise the test would
  // vacuously pass on an idle fault path.
  EXPECT_GT(base.origin_retries, 0u);
  EXPECT_GT(base.origin_timeouts, 0u);
  EXPECT_GT(base.origin_hedges, 0u);
  EXPECT_GT(base.hedge_cancels, 0u);
  EXPECT_GT(base.stale_serves, 0u);
  EXPECT_GT(base.failed_requests, 0u);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CdnServer server(sharded_lru(capacity), fault_injected_config(duration));
    const auto got = server.replay_concurrent(trace, ReplayMode::kMax, threads);

    EXPECT_EQ(got.requests, base.requests);
    EXPECT_EQ(got.hits, base.hits);
    EXPECT_EQ(got.bytes_served, base.bytes_served);
    EXPECT_EQ(got.wan_bytes, base.wan_bytes);
    EXPECT_EQ(got.origin_fetches, base.origin_fetches);
    EXPECT_EQ(got.origin_retries, base.origin_retries);
    EXPECT_EQ(got.origin_timeouts, base.origin_timeouts);
    EXPECT_EQ(got.origin_errors, base.origin_errors);
    EXPECT_EQ(got.origin_hedges, base.origin_hedges);
    EXPECT_EQ(got.hedge_cancels, base.hedge_cancels);
    EXPECT_EQ(got.stale_serves, base.stale_serves);
    EXPECT_EQ(got.failed_requests, base.failed_requests);
    // Latency quantiles merge from exact integer bucket counts, so both the
    // user-latency and fetch-latency distributions match to the last bit.
    EXPECT_DOUBLE_EQ(got.p90_latency_ms, base.p90_latency_ms);
    EXPECT_DOUBLE_EQ(got.p99_latency_ms, base.p99_latency_ms);
    EXPECT_DOUBLE_EQ(got.fetch_p50_ms, base.fetch_p50_ms);
    EXPECT_DOUBLE_EQ(got.fetch_p90_ms, base.fetch_p90_ms);
    EXPECT_DOUBLE_EQ(got.fetch_p99_ms, base.fetch_p99_ms);
    // The mean is a running double sum; float addition is not associative
    // across worker partitions, so it agrees to ~1 ulp per add, not bit-exact.
    EXPECT_NEAR(got.fetch_avg_ms, base.fetch_avg_ms, 1e-9 * base.fetch_avg_ms);
  }
}

}  // namespace
}  // namespace lhr::server
