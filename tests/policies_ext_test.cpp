// Behavioral tests for the extended baseline set: GDS, LHD, Hyperbolic,
// ARC, S4LRU, SecondHit. (The cross-policy property suite in
// policies_test.cpp covers them automatically via the factory.)
#include <gtest/gtest.h>

#include "gen/zipf.hpp"
#include "policies/arc.hpp"
#include "policies/gds.hpp"
#include "policies/hyperbolic.hpp"
#include "policies/lhd.hpp"
#include "policies/lirs.hpp"
#include "policies/lru.hpp"
#include "policies/s4lru.hpp"
#include "policies/second_hit.hpp"
#include "policies/tinylfu.hpp"
#include "policies/two_q.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace lhr::policy {
namespace {

trace::Trace zipf_trace(std::size_t n, std::size_t contents, double alpha,
                        std::uint64_t size, std::uint64_t seed) {
  gen::ZipfSampler zipf(contents, alpha);
  util::Xoshiro256 rng(seed);
  trace::Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({static_cast<double>(i), zipf.sample(rng), size});
  }
  return t;
}

// ------------------------------------------------------------------- GDS

TEST(GdsPolicy, PrefersEvictingLargeObjects) {
  Gds gds(1000);
  gds.access({1.0, 1, 800});
  gds.access({2.0, 2, 100});
  gds.access({3.0, 3, 900});  // must displace the 800-byte object
  EXPECT_TRUE(gds.access({4.0, 2, 100}));
  EXPECT_FALSE(gds.access({5.0, 1, 800}));
}

TEST(GdsPolicy, SmallObjectOutranksEqualRecencyLarge) {
  Gds gds(300);
  gds.access({1.0, 1, 50});    // priority 1/50
  gds.access({2.0, 2, 100});   // priority 1/100
  gds.access({3.0, 3, 100});   // priority 1/100
  gds.access({4.0, 4, 100});   // needs 50 bytes: evicts a 1/100 object
  EXPECT_TRUE(gds.access({5.0, 1, 50}));  // the small dense object survives
}

// ------------------------------------------------------------------- LHD

TEST(LhdPolicy, CapacityInvariantAndLearns) {
  LhdConfig cfg;
  cfg.reconfigure_interval = 2'000;
  Lhd lhd(50'000, cfg);
  const auto t = zipf_trace(30'000, 1'000, 1.0, 1'000, 3);
  for (const auto& r : t) {
    lhd.access(r);
    ASSERT_LE(lhd.used_bytes(), 50'000u);
  }
  EXPECT_GT(lhd.metadata_bytes(), 0u);
}

TEST(LhdPolicy, BeatsRandomOnSkewedWorkload) {
  const auto t = zipf_trace(60'000, 2'000, 1.1, 1'000, 5);
  LhdConfig cfg;
  cfg.reconfigure_interval = 5'000;
  Lhd lhd(100'000, cfg);
  const double lhd_ratio = sim::simulate(lhd, t).object_hit_ratio();

  // LRU as the sanity baseline: LHD should be at least comparable.
  Lru lru(100'000);
  const double lru_ratio = sim::simulate(lru, t).object_hit_ratio();
  EXPECT_GE(lhd_ratio, lru_ratio - 0.05);
}

// ------------------------------------------------------------ Hyperbolic

TEST(HyperbolicPolicy, KeepsFrequentlyRequestedObjects) {
  Hyperbolic hyp(300, /*sample=*/1000);
  for (int i = 0; i < 20; ++i) hyp.access({i * 1.0, 1, 100});  // hot
  hyp.access({30.0, 2, 100});
  hyp.access({31.0, 3, 100});
  hyp.access({32.0, 4, 100});  // evicts one of the cold newcomers
  EXPECT_TRUE(hyp.access({33.0, 1, 100}));
}

TEST(HyperbolicPolicy, CapacityInvariant) {
  Hyperbolic hyp(20'000);
  const auto t = zipf_trace(20'000, 500, 0.8, 700, 7);
  for (const auto& r : t) {
    hyp.access(r);
    ASSERT_LE(hyp.used_bytes(), 20'000u);
  }
}

// ------------------------------------------------------------------- ARC

TEST(ArcPolicy, ResidentHitPromotesToT2) {
  Arc arc(1000);
  arc.access({1.0, 1, 100});
  EXPECT_TRUE(arc.access({2.0, 1, 100}));
  EXPECT_TRUE(arc.access({3.0, 1, 100}));
}

TEST(ArcPolicy, GhostHitAdaptsTarget) {
  Arc arc(300);
  // Fill T1 with 3 objects, push one out to B1, then re-request it.
  arc.access({1.0, 1, 100});
  arc.access({2.0, 2, 100});
  arc.access({3.0, 3, 100});
  arc.access({4.0, 4, 100});  // evicts 1 into B1
  const double p_before = arc.target_p();
  arc.access({5.0, 1, 100});  // B1 ghost hit: p must increase (favor recency)
  EXPECT_GT(arc.target_p(), p_before);
}

TEST(ArcPolicy, ScanResistance) {
  // A long scan of one-hit wonders must not flush the hot set that ARC has
  // promoted to T2 — the classic ARC selling point.
  Arc arc(1'000);
  for (int rep = 0; rep < 3; ++rep) {
    for (trace::Key k = 1; k <= 5; ++k) {
      arc.access({rep * 10.0 + static_cast<double>(k), k, 100});
    }
  }
  // Scan: 200 distinct keys.
  for (int i = 0; i < 200; ++i) {
    arc.access({100.0 + i, 10'000 + static_cast<trace::Key>(i), 100});
  }
  int hot_still_cached = 0;
  for (trace::Key k = 1; k <= 5; ++k) {
    hot_still_cached += arc.access({400.0 + static_cast<double>(k), k, 100});
  }
  EXPECT_GE(hot_still_cached, 3);
}

TEST(ArcPolicy, CapacityInvariant) {
  Arc arc(30'000);
  const auto t = zipf_trace(30'000, 800, 0.9, 900, 11);
  for (const auto& r : t) {
    arc.access(r);
    ASSERT_LE(arc.used_bytes(), 30'000u);
  }
}

// ----------------------------------------------------------------- S4LRU

TEST(S4LruPolicy, HitsPromoteAcrossSegments) {
  S4Lru s4(4'000);  // 1000 bytes per segment
  s4.access({1.0, 1, 500});
  EXPECT_EQ(s4.segment_bytes(0), 500u);
  EXPECT_TRUE(s4.access({2.0, 1, 500}));  // promote L0 -> L1
  EXPECT_EQ(s4.segment_bytes(0), 0u);
  EXPECT_EQ(s4.segment_bytes(1), 500u);
  EXPECT_TRUE(s4.access({3.0, 1, 500}));  // L1 -> L2
  EXPECT_TRUE(s4.access({4.0, 1, 500}));  // L2 -> L3
  EXPECT_TRUE(s4.access({5.0, 1, 500}));  // stays L3
  EXPECT_EQ(s4.segment_bytes(3), 500u);
}

TEST(S4LruPolicy, DemotionCascade) {
  S4Lru s4(4'000);
  // Promote key 1 to L1, then overflow L0 with singles: they evict from L0
  // while key 1 survives in L1.
  s4.access({1.0, 1, 500});
  s4.access({2.0, 1, 500});
  for (trace::Key k = 10; k < 20; ++k) {
    s4.access({3.0 + static_cast<double>(k), k, 500});
  }
  EXPECT_TRUE(s4.access({30.0, 1, 500}));
}

TEST(S4LruPolicy, ObjectsBiggerThanSegmentBypass) {
  S4Lru s4(4'000);
  EXPECT_FALSE(s4.access({1.0, 1, 1'500}));
  EXPECT_FALSE(s4.access({2.0, 1, 1'500}));  // never cached
  EXPECT_EQ(s4.used_bytes(), 0u);
}

TEST(S4LruPolicy, CapacityInvariant) {
  S4Lru s4(20'000);
  const auto t = zipf_trace(20'000, 400, 1.0, 800, 13);
  for (const auto& r : t) {
    s4.access(r);
    ASSERT_LE(s4.used_bytes(), 20'000u);
  }
}

// ------------------------------------------------------------- SecondHit

TEST(SecondHitPolicy, AdmitsOnSecondRequestWithinHorizon) {
  SecondHit sh(10'000, SecondHitConfig{.history_horizon_s = 100.0});
  sh.access({1.0, 1, 500});
  EXPECT_EQ(sh.used_bytes(), 0u);        // first sighting: remembered only
  sh.access({50.0, 1, 500});             // second within horizon: admitted
  EXPECT_EQ(sh.used_bytes(), 500u);
  EXPECT_TRUE(sh.access({60.0, 1, 500}));
}

TEST(SecondHitPolicy, ExpiredHistoryDoesNotAdmit) {
  SecondHit sh(10'000, SecondHitConfig{.history_horizon_s = 10.0});
  sh.access({1.0, 1, 500});
  sh.access({100.0, 1, 500});  // horizon long passed: counts as first again
  EXPECT_EQ(sh.used_bytes(), 0u);
  sh.access({105.0, 1, 500});  // second sighting of the new epoch
  EXPECT_EQ(sh.used_bytes(), 500u);
}

TEST(SecondHitPolicy, OneHitWondersNeverOccupySpace) {
  SecondHit sh(50'000);
  for (int i = 0; i < 5'000; ++i) {
    sh.access({i * 1.0, 1'000'000 + static_cast<trace::Key>(i), 700});
  }
  EXPECT_EQ(sh.used_bytes(), 0u);
}

// ------------------------------------------------------------------ LIRS

TEST(LirsPolicy, GhostHitPromotesToLir) {
  Lirs lirs(1'000);
  // Cold start: keys 1..9 fill the LIR budget (900 bytes).
  for (trace::Key k = 1; k <= 9; ++k) {
    lirs.access({static_cast<double>(k), k, 100});
  }
  EXPECT_EQ(lirs.lir_bytes(), 900u);
  // Key 50 enters as resident HIR, is evicted by key 51, leaving a ghost.
  lirs.access({20.0, 50, 100});
  lirs.access({21.0, 51, 100});
  EXPECT_GE(lirs.ghost_count(), 1u);
  // Ghost hit: key 50 returns -> promoted to LIR (a hot LIR demotes).
  EXPECT_FALSE(lirs.access({22.0, 50, 100}));
  EXPECT_TRUE(lirs.access({23.0, 50, 100}));
}

TEST(LirsPolicy, ScanResistance) {
  Lirs lirs(1'000);
  // Establish a hot LIR set.
  for (int round = 0; round < 3; ++round) {
    for (trace::Key k = 1; k <= 8; ++k) {
      lirs.access({round * 10.0 + static_cast<double>(k), k, 100});
    }
  }
  // Long scan of singles: must churn through the small HIR queue only.
  for (int i = 0; i < 300; ++i) {
    lirs.access({100.0 + i, 10'000 + static_cast<trace::Key>(i), 100});
  }
  int hot_hits = 0;
  for (trace::Key k = 1; k <= 8; ++k) {
    hot_hits += lirs.access({500.0 + static_cast<double>(k), k, 100});
  }
  EXPECT_GE(hot_hits, 6);
}

TEST(LirsPolicy, CapacityInvariantUnderChurn) {
  Lirs lirs(30'000);
  const auto t = zipf_trace(30'000, 800, 0.9, 700, 23);
  for (const auto& r : t) {
    lirs.access(r);
    ASSERT_LE(lirs.used_bytes(), 30'000u);
  }
  EXPECT_GT(lirs.metadata_bytes(), 0u);
}

TEST(LirsPolicy, GhostPopulationIsBounded) {
  Lirs lirs(10'000, LirsConfig{.lir_fraction = 0.9, .ghost_bytes_fraction = 1.0});
  // Endless one-hit wonders: ghosts must not grow without bound.
  for (int i = 0; i < 20'000; ++i) {
    lirs.access({i * 1.0, 1'000'000 + static_cast<trace::Key>(i), 500});
  }
  EXPECT_LE(lirs.ghost_count(), 10'000u / 500 + 4);  // ~ghost byte budget
}

// ------------------------------------------------- adaptive W-TinyLFU

TEST(WTinyLfuAdaptive, WindowFractionMovesAndCapacityHolds) {
  WTinyLfuConfig cfg;
  cfg.adaptive_window = true;
  cfg.adapt_interval = 2'000;
  WTinyLfu w(50'000, cfg);
  const double f0 = w.window_fraction();
  const auto t = zipf_trace(40'000, 1'500, 0.7, 600, 17);
  bool moved = false;
  for (const auto& r : t) {
    w.access(r);
    ASSERT_LE(w.used_bytes(), 50'000u);
    if (w.window_fraction() != f0) moved = true;
  }
  EXPECT_TRUE(moved);
  EXPECT_GE(w.window_fraction(), 0.01);
  EXPECT_LE(w.window_fraction(), 0.80);
}

TEST(WTinyLfuAdaptive, DisabledByDefault) {
  WTinyLfu w(50'000);
  const double f0 = w.window_fraction();
  const auto t = zipf_trace(10'000, 500, 0.9, 500, 19);
  for (const auto& r : t) w.access(r);
  EXPECT_DOUBLE_EQ(w.window_fraction(), f0);
}

// -------------------------------------------------------------------- 2Q

TEST(TwoQPolicy, GhostProvenKeysGoToMain) {
  TwoQ q(1'000);
  // Key 1 enters A1in (kin = 250 bytes), gets pushed out into the ghost
  // list by newer singles, then returns: second admission goes to Am.
  q.access({1.0, 1, 200});
  for (trace::Key k = 10; k < 16; ++k) {
    q.access({2.0 + static_cast<double>(k), k, 200});
  }
  EXPECT_FALSE(q.access({20.0, 1, 200}));  // miss, but ghost-proven -> Am
  // Now a scan of singles must NOT evict key 1 (it lives in Am; the scan
  // churns through A1in).
  for (trace::Key k = 100; k < 130; ++k) {
    q.access({30.0 + static_cast<double>(k), k, 200});
  }
  EXPECT_TRUE(q.access({100.0, 1, 200}));
}

TEST(TwoQPolicy, A1inHitDoesNotPromote) {
  TwoQ q(1'000);
  q.access({1.0, 1, 100});
  EXPECT_TRUE(q.access({2.0, 1, 100}));  // hit inside A1in
  // Push enough singles to flush A1in: key 1 must be evicted (it never
  // reached Am despite the correlated hit).
  for (trace::Key k = 10; k < 40; ++k) {
    q.access({3.0 + static_cast<double>(k), k, 100});
  }
  EXPECT_FALSE(q.access({50.0, 1, 100}));
}

TEST(TwoQPolicy, CapacityInvariant) {
  TwoQ q(20'000);
  const auto t = zipf_trace(20'000, 500, 0.9, 700, 21);
  for (const auto& r : t) {
    q.access(r);
    ASSERT_LE(q.used_bytes(), 20'000u);
  }
  EXPECT_GT(q.metadata_bytes(), 0u);
}

}  // namespace
}  // namespace lhr::policy
