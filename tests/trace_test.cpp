#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <cmath>
#include <fstream>

#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

namespace lhr::trace {
namespace {

Trace small_trace() {
  // key 1 (size 100): t = 0, 10, 30;  key 2 (size 2000): t = 5;  key 3: t = 20.
  return Trace{{{0.0, 1, 100},
                {5.0, 2, 2000},
                {10.0, 1, 100},
                {20.0, 3, 50},
                {30.0, 1, 100}}};
}

TEST(Trace, BasicAccessors) {
  const Trace t = small_trace();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.duration(), 30.0);
  EXPECT_TRUE(t.is_time_ordered());
  EXPECT_EQ(t[1].key, 2u);
}

TEST(Trace, SortRepairsOrder) {
  Trace t{{{5.0, 1, 10}, {1.0, 2, 10}, {3.0, 3, 10}}};
  EXPECT_FALSE(t.is_time_ordered());
  t.sort_by_time();
  EXPECT_TRUE(t.is_time_ordered());
  EXPECT_EQ(t[0].key, 2u);
}

TEST(Trace, EmptyTraceDuration) {
  EXPECT_DOUBLE_EQ(Trace{}.duration(), 0.0);
  EXPECT_TRUE(Trace{}.is_time_ordered());
}

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_ = std::filesystem::temp_directory_path() / "lhr_trace_test.txt";
};

TEST_F(TraceIoTest, RoundTrip) {
  const Trace original = small_trace();
  write_trace_file(original, path_);
  const Trace loaded = read_trace_file(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]);
  }
}

TEST_F(TraceIoTest, SkipsCommentsAndBlanks) {
  std::ofstream out(path_);
  out << "# a comment\n\n  \n1.5 7 100\n# another\n2.5 8 200\n";
  out.close();
  const Trace t = read_trace_file(path_);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].key, 7u);
  EXPECT_EQ(t[1].size, 200u);
}

TEST_F(TraceIoTest, ThrowsOnMalformedLine) {
  std::ofstream out(path_);
  out << "1.0 2\n";  // missing size
  out.close();
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

TEST_F(TraceIoTest, ThrowsOnBadNumber) {
  std::ofstream out(path_);
  out << "1.0 abc 100\n";
  out.close();
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

TEST_F(TraceIoTest, ThrowsOnMissingFile) {
  EXPECT_THROW(read_trace_file("/nonexistent/definitely/missing"), std::runtime_error);
}

TEST_F(TraceIoTest, FinalLineWithoutNewlineIsNotTruncated) {
  std::ofstream out(path_);
  out << "1.0 7 100\n2.0 8 200";  // no trailing newline
  out.close();
  const Trace t = read_trace_file(path_);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].key, 8u);
  EXPECT_EQ(t[1].size, 200u);
}

TEST_F(TraceIoTest, TrailingBlankLinesProduceNoPhantomRequests) {
  std::ofstream out(path_);
  out << "1.0 7 100\n\n   \n\t\r\n\n";  // trailing empty/whitespace-only lines
  out.close();
  const Trace t = read_trace_file(path_);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].key, 7u);
}

TEST_F(TraceIoTest, RejectsTrailingJunkOnLine) {
  std::ofstream out(path_);
  out << "1.0 7 100 extra\n";  // four fields where three are expected
  out.close();
  EXPECT_THROW(read_trace_file(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsNonFiniteTime) {
  for (const char* bad : {"inf 7 100\n", "nan 7 100\n", "-inf 7 100\n"}) {
    std::ofstream out(path_);
    out << bad;
    out.close();
    EXPECT_THROW(read_trace_file(path_), std::runtime_error) << bad;
  }
}

TEST_F(TraceIoTest, RejectsNegativeAndZeroSize) {
  for (const char* bad : {"1.0 7 -100\n", "1.0 7 0\n"}) {
    std::ofstream out(path_);
    out << bad;
    out.close();
    EXPECT_THROW(read_trace_file(path_), std::runtime_error) << bad;
  }
}

TEST_F(TraceIoTest, ErrorNamesPathAndLine) {
  std::ofstream out(path_);
  out << "1.0 7 100\n2.0 8 -5\n";
  out.close();
  try {
    (void)read_trace_file(path_);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path_), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

// ----------------------------------------------------------- TraceStats

TEST(TraceStats, SummaryColumnsOnHandBuiltTrace) {
  const Trace t = small_trace();
  const TraceSummary s = summarize(t);
  EXPECT_NEAR(s.duration_hours, 30.0 / 3600.0, 1e-12);
  EXPECT_EQ(s.unique_contents, 3u);
  EXPECT_EQ(s.total_requests, 5u);
  const double total_bytes = 100 + 2000 + 100 + 50 + 100;
  EXPECT_NEAR(s.total_bytes_requested_tb * 1024.0 * 1024.0 * 1024.0 * 1024.0,
              total_bytes, 1e-6);
  const double unique_bytes = 100 + 2000 + 50;
  EXPECT_NEAR(s.unique_bytes_gb * 1024.0 * 1024.0 * 1024.0, unique_bytes, 1e-6);
  EXPECT_NEAR(s.mean_content_size_mb * 1024.0 * 1024.0, unique_bytes / 3.0, 1e-6);
  EXPECT_NEAR(s.max_content_size_mb * 1024.0 * 1024.0, 2000.0, 1e-6);
  // Contents 2 and 3 are one-hit wonders.
  EXPECT_NEAR(s.one_hit_wonder_fraction, 2.0 / 3.0, 1e-12);
}

TEST(TraceStats, PeakActiveBytes) {
  // key 1 active [0,30] (100 B), key 2 active only at t=5 (2000 B, single
  // request => zero-length interval), key 3 single at t=20.
  const Trace t = small_trace();
  const TraceSummary s = summarize(t);
  const double peak_bytes = s.peak_active_bytes_gb * 1024.0 * 1024.0 * 1024.0;
  // At t=5 both key 1 and key 2 events coincide: peak = 2100.
  EXPECT_NEAR(peak_bytes, 2100.0, 1e-6);
}

TEST(TraceStats, EmptyTraceSummary) {
  const TraceSummary s = summarize(Trace{});
  EXPECT_EQ(s.total_requests, 0u);
  EXPECT_EQ(s.unique_contents, 0u);
}

TEST(TraceStats, PopularityCountsSorted) {
  const auto counts = popularity_counts(small_trace());
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(TraceStats, ZipfFitRecoversAlphaFromIdealCounts) {
  // counts[i] = round(C / (i+1)^0.8)
  std::vector<std::uint64_t> counts;
  for (int i = 1; i <= 2000; ++i) {
    counts.push_back(static_cast<std::uint64_t>(1e6 / std::pow(i, 0.8)));
  }
  EXPECT_NEAR(fit_zipf_alpha(counts), 0.8, 0.02);
}

TEST(TraceStats, ZipfFitHandlesTinyInput) {
  EXPECT_EQ(fit_zipf_alpha({}), 0.0);
  EXPECT_EQ(fit_zipf_alpha({5}), 0.0);
}

TEST(TraceStats, InterRequestTimes) {
  const auto irts = inter_request_times(small_trace());
  // Only key 1 repeats: gaps 10 and 20.
  ASSERT_EQ(irts.size(), 2u);
  EXPECT_DOUBLE_EQ(irts[0], 10.0);
  EXPECT_DOUBLE_EQ(irts[1], 20.0);
}

TEST(TraceStats, EmpiricalCdf) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0, 4.0}, {0.5, 2.0, 10.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

}  // namespace
}  // namespace lhr::trace
