#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/zipf.hpp"
#include "ml/features.hpp"
#include "ml/gbdt.hpp"
#include "ml/zipf_detector.hpp"
#include "util/rng.hpp"

namespace lhr::ml {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

// ------------------------------------------------------------------ GBDT

Dataset make_dataset(const std::vector<std::vector<float>>& rows) {
  Dataset d;
  d.n_features = rows.empty() ? 0 : rows[0].size();
  for (const auto& row : rows) {
    d.values.insert(d.values.end(), row.begin(), row.end());
  }
  return d;
}

TEST(Gbdt, FitsConstantTarget) {
  Dataset d = make_dataset({{0.0f}, {1.0f}, {2.0f}, {3.0f}});
  const std::vector<float> y = {0.7f, 0.7f, 0.7f, 0.7f};
  Gbdt model;
  GbdtConfig cfg;
  cfg.num_trees = 5;
  cfg.min_child_weight = 1.0;
  model.fit(d, y, cfg);
  for (const auto v : {0.0f, 1.5f, 3.0f}) {
    EXPECT_NEAR(model.predict(std::vector<float>{v}), 0.7, 1e-3);
  }
}

TEST(Gbdt, LearnsStepFunction) {
  util::Xoshiro256 rng(1);
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  for (int i = 0; i < 4000; ++i) {
    const float x = static_cast<float>(rng.next_double() * 10.0);
    rows.push_back({x});
    y.push_back(x < 5.0f ? 0.0f : 1.0f);
  }
  Gbdt model;
  GbdtConfig cfg;
  cfg.num_trees = 20;
  cfg.learning_rate = 0.3;
  model.fit(make_dataset(rows), y, cfg);
  EXPECT_LT(model.predict(std::vector<float>{2.0f}), 0.15);
  EXPECT_GT(model.predict(std::vector<float>{8.0f}), 0.85);
}

TEST(Gbdt, LearnsTwoFeatureInteraction) {
  util::Xoshiro256 rng(2);
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  for (int i = 0; i < 8000; ++i) {
    const float a = static_cast<float>(rng.next_double());
    const float b = static_cast<float>(rng.next_double());
    rows.push_back({a, b});
    y.push_back((a > 0.5f) != (b > 0.5f) ? 1.0f : 0.0f);  // XOR
  }
  Gbdt model;
  GbdtConfig cfg;
  cfg.num_trees = 40;
  cfg.max_depth = 4;
  cfg.learning_rate = 0.3;
  model.fit(make_dataset(rows), y, cfg);
  EXPECT_GT(model.predict(std::vector<float>{0.9f, 0.1f}), 0.7);
  EXPECT_GT(model.predict(std::vector<float>{0.1f, 0.9f}), 0.7);
  EXPECT_LT(model.predict(std::vector<float>{0.9f, 0.9f}), 0.3);
  EXPECT_LT(model.predict(std::vector<float>{0.1f, 0.1f}), 0.3);
}

TEST(Gbdt, RoutesMissingValuesUsefully) {
  // Feature is NaN for exactly the positive class: the learned default
  // direction must separate them.
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    if (i % 2 == 0) {
      rows.push_back({static_cast<float>(rng.next_double())});
      y.push_back(0.0f);
    } else {
      rows.push_back({kNaN});
      y.push_back(1.0f);
    }
  }
  Gbdt model;
  GbdtConfig cfg;
  cfg.num_trees = 10;
  cfg.learning_rate = 0.5;
  model.fit(make_dataset(rows), y, cfg);
  EXPECT_GT(model.predict(std::vector<float>{kNaN}), 0.8);
  EXPECT_LT(model.predict(std::vector<float>{0.5f}), 0.2);
}

TEST(Gbdt, DeterministicForSameSeed) {
  util::Xoshiro256 rng(4);
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({static_cast<float>(rng.next_double()),
                    static_cast<float>(rng.next_double())});
    y.push_back(static_cast<float>(rng.next_double()));
  }
  GbdtConfig cfg;
  cfg.subsample = 0.8;
  Gbdt a, b;
  a.fit(make_dataset(rows), y, cfg);
  b.fit(make_dataset(rows), y, cfg);
  for (int i = 0; i < 20; ++i) {
    const std::vector<float> x = {static_cast<float>(i) / 20.0f, 0.3f};
    EXPECT_EQ(a.predict(x), b.predict(x));
  }
}

TEST(Gbdt, MoreTreesReduceTrainingError) {
  util::Xoshiro256 rng(5);
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  for (int i = 0; i < 3000; ++i) {
    const float x = static_cast<float>(rng.next_double() * 6.28);
    rows.push_back({x});
    y.push_back(std::sin(x));
  }
  const Dataset d = make_dataset(rows);

  const auto mse_with_trees = [&](std::size_t n_trees) {
    Gbdt model;
    GbdtConfig cfg;
    cfg.num_trees = n_trees;
    model.fit(d, y, cfg);
    double mse = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const double e = model.predict(rows[i]) - y[i];
      mse += e * e;
    }
    return mse / static_cast<double>(rows.size());
  };
  EXPECT_LT(mse_with_trees(30), mse_with_trees(3));
}

TEST(Gbdt, InputValidation) {
  Gbdt model;
  GbdtConfig cfg;
  EXPECT_THROW(model.fit(Dataset{}, std::vector<float>{}, cfg), std::invalid_argument);
  Dataset d = make_dataset({{1.0f}});
  EXPECT_THROW(model.fit(d, std::vector<float>{1.0f, 2.0f}, cfg), std::invalid_argument);
  cfg.max_bins = 1;
  EXPECT_THROW(model.fit(d, std::vector<float>{1.0f}, cfg), std::invalid_argument);

  GbdtConfig ok;
  ok.num_trees = 1;
  ok.min_child_weight = 1.0;
  model.fit(d, std::vector<float>{1.0f}, ok);
  EXPECT_THROW((void)model.predict(std::vector<float>{1.0f, 2.0f}), std::invalid_argument);
}

TEST(Gbdt, MemoryGrowsWithTrees) {
  util::Xoshiro256 rng(6);
  std::vector<std::vector<float>> rows;
  std::vector<float> y;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back({static_cast<float>(rng.next_double())});
    y.push_back(static_cast<float>(rng.next_double()));
  }
  Gbdt small, large;
  GbdtConfig cfg;
  cfg.num_trees = 2;
  small.fit(make_dataset(rows), y, cfg);
  cfg.num_trees = 30;
  large.fit(make_dataset(rows), y, cfg);
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
  EXPECT_EQ(large.tree_count(), 30u);
}

// -------------------------------------------------------------- Features

TEST(Features, DimensionAccounting) {
  EXPECT_EQ(FeatureExtractor(FeatureConfig{20, true}).dim(), 24u);
  EXPECT_EQ(FeatureExtractor(FeatureConfig{10, false}).dim(), 10u);
  EXPECT_THROW(FeatureExtractor(FeatureConfig{0, true}), std::invalid_argument);
}

TEST(Features, UnseenContentIsAllMissingIrts) {
  FeatureExtractor fx(FeatureConfig{5, true});
  std::vector<float> out(fx.dim());
  fx.extract({10.0, 1, 2048}, out);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(std::isnan(out[i])) << i;
  EXPECT_NEAR(out[5], std::log(2048.0), 1e-5);       // log size
  EXPECT_NEAR(out[6], 2048.0 / (1024.0 * 1024.0), 1e-9);  // size in MB
  EXPECT_EQ(out[7], 0.0f);                            // request count
  EXPECT_EQ(out[8], 0.0f);                            // age
}

TEST(Features, IrtOrderingIsMostRecentFirst) {
  FeatureExtractor fx(FeatureConfig{4, false});
  // Requests at t = 0, 10, 30, 70 => IRTs (newest first at t=100): 30, 40, 20, 10.
  for (const double t : {0.0, 10.0, 30.0, 70.0}) fx.record({t, 7, 100});
  std::vector<float> out(fx.dim());
  fx.extract({100.0, 7, 100}, out);
  EXPECT_NEAR(out[0], std::log1p(30.0), 1e-5);  // IRT_1: since last request
  EXPECT_NEAR(out[1], std::log1p(40.0), 1e-5);  // IRT_2: 70-30
  EXPECT_NEAR(out[2], std::log1p(20.0), 1e-5);  // IRT_3: 30-10
  EXPECT_NEAR(out[3], std::log1p(10.0), 1e-5);  // IRT_4: 10-0
}

TEST(Features, RingBufferKeepsOnlyRecentIrts) {
  FeatureExtractor fx(FeatureConfig{3, false});
  for (int i = 0; i <= 10; ++i) fx.record({i * 1.0, 1, 100});
  std::vector<float> out(fx.dim());
  fx.extract({11.0, 1, 100}, out);
  // All stored IRTs are 1.0; none missing.
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(out[i], std::log1p(1.0), 1e-5);
}

TEST(Features, CountAndAgeGrow) {
  FeatureExtractor fx(FeatureConfig{2, true});
  fx.record({0.0, 1, 100});
  fx.record({5.0, 1, 100});
  std::vector<float> out(fx.dim());
  fx.extract({20.0, 1, 100}, out);
  EXPECT_NEAR(out[2 + 2], std::log1p(2.0), 1e-5);   // count
  EXPECT_NEAR(out[2 + 3], std::log1p(20.0), 1e-5);  // age since first
}

TEST(Features, PruneDropsIdleContents) {
  FeatureExtractor fx;
  fx.record({0.0, 1, 100});
  fx.record({100.0, 2, 100});
  EXPECT_EQ(fx.tracked_contents(), 2u);
  fx.prune_older_than(50.0);
  EXPECT_EQ(fx.tracked_contents(), 1u);
  EXPECT_GT(fx.memory_bytes(), 0u);
}

TEST(Features, ExtractValidatesOutputSize) {
  FeatureExtractor fx;
  std::vector<float> wrong(3);
  EXPECT_THROW(fx.extract({0.0, 1, 1}, wrong), std::invalid_argument);
}

// ---------------------------------------------------------- ZipfDetector

std::vector<trace::Key> zipf_window(double alpha, std::size_t n, std::uint64_t seed) {
  gen::ZipfSampler zipf(5'000, alpha);
  util::Xoshiro256 rng(seed);
  std::vector<trace::Key> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(zipf.sample(rng));
  return keys;
}

TEST(ZipfDetector, RecoversAlpha) {
  ZipfDetector det;
  for (const auto k : zipf_window(0.9, 200'000, 1)) det.record(k);
  const auto r = det.close_window();
  // Finite-sample rank-frequency fits skew low; 15% accuracy is enough for
  // change detection.
  EXPECT_NEAR(r.alpha, 0.9, 0.15);
  EXPECT_TRUE(r.change_detected);  // first window always triggers
}

TEST(ZipfDetector, DetectsAlphaShift) {
  ZipfDetector det(ZipfDetectorConfig{.epsilon = 0.05});
  for (const auto k : zipf_window(0.7, 100'000, 2)) det.record(k);
  det.close_window();
  for (const auto k : zipf_window(1.1, 100'000, 3)) det.record(k);
  const auto r = det.close_window();
  EXPECT_TRUE(r.change_detected);
  EXPECT_GT(r.alpha, r.previous_alpha);
}

TEST(ZipfDetector, QuietWhenDistributionIsStable) {
  ZipfDetector det(ZipfDetectorConfig{.epsilon = 0.05});
  for (const auto k : zipf_window(0.9, 150'000, 4)) det.record(k);
  det.close_window();
  int alarms = 0;
  for (std::uint64_t w = 0; w < 5; ++w) {
    for (const auto k : zipf_window(0.9, 150'000, 5 + w)) det.record(k);
    alarms += det.close_window().change_detected;
  }
  EXPECT_LE(alarms, 1);  // paper reports ~97-99% accuracy
}

TEST(ZipfDetector, WindowStateResets) {
  ZipfDetector det;
  det.record(1);
  det.record(1);
  det.record(2);
  const auto r1 = det.close_window();
  EXPECT_EQ(r1.unique_contents, 2u);
  const auto r2 = det.close_window();  // empty window
  EXPECT_EQ(r2.unique_contents, 0u);
  EXPECT_EQ(det.windows_closed(), 2u);
}

}  // namespace
}  // namespace lhr::ml
