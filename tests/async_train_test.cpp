// ml::AsyncTrainer and LhrCache's asynchronous retraining path. The
// concurrent-predict tests are the repository's TSan targets for the
// model-swap design: readers keep predicting on the old model (a
// shared_ptr<const CompiledModel>) while the trainer fits — and compiles
// the FlatForest of — a fresh object.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/lhr_cache.hpp"
#include "gen/zipf.hpp"
#include "ml/async_trainer.hpp"
#include "ml/gbdt.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace lhr {
namespace {

struct Labeled {
  ml::Dataset x;
  std::vector<float> y;
};

Labeled make_batch(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Labeled out;
  out.x.n_features = dim;
  out.x.values.reserve(rows * dim);
  out.y.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t f = 0; f < dim; ++f) {
      const float v = static_cast<float>(rng.next_double());
      out.x.values.push_back(v);
      acc += v;
    }
    out.y.push_back(static_cast<float>(acc / static_cast<double>(dim)));
  }
  return out;
}

ml::GbdtConfig small_config() {
  ml::GbdtConfig cfg;
  cfg.num_trees = 6;
  cfg.max_depth = 4;
  return cfg;
}

std::string serialized(const ml::Gbdt& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

// -------------------------------------------------------------- AsyncTrainer

TEST(AsyncTrainer, BackgroundFitMatchesSynchronousFit) {
  const auto data = make_batch(4'000, 6, 11);

  ml::Gbdt sync_model;
  sync_model.fit(data.x, data.y, small_config());

  ml::AsyncTrainer trainer(2);
  Labeled copy = data;  // submit consumes its batch
  ASSERT_TRUE(trainer.submit(std::move(copy.x), std::move(copy.y), small_config()));
  trainer.wait();
  ASSERT_TRUE(trainer.result_ready());
  const auto async_model = trainer.collect();
  ASSERT_NE(async_model, nullptr);
  EXPECT_EQ(serialized(async_model->gbdt), serialized(sync_model));
  // The trainer compiled the inference forest before publishing the result.
  EXPECT_TRUE(async_model->forest.trained());
  EXPECT_EQ(async_model->forest.tree_count(), sync_model.tree_count());
  EXPECT_EQ(trainer.completed(), 1u);
  EXPECT_EQ(trainer.failed(), 0u);
  EXPECT_GT(trainer.background_seconds(), 0.0);
}

TEST(AsyncTrainer, SubmitWhileBusyIsRejected) {
  const auto data = make_batch(2'000, 6, 22);
  ml::AsyncTrainer trainer(1);

  Labeled first = data;
  ASSERT_TRUE(trainer.submit(std::move(first.x), std::move(first.y), small_config()));
  // busy() holds from submit until collect() — even after the fit finishes —
  // so this rejection is deterministic, not a race on fit duration.
  Labeled second = data;
  EXPECT_FALSE(trainer.submit(std::move(second.x), std::move(second.y), small_config()));
  // A rejected submit leaves its arguments untouched.
  EXPECT_EQ(second.x.n_rows(), data.x.n_rows());
  EXPECT_EQ(second.y.size(), data.y.size());

  trainer.wait();
  EXPECT_TRUE(trainer.busy());  // still busy: result not collected yet
  EXPECT_NE(trainer.collect(), nullptr);
  EXPECT_FALSE(trainer.busy());

  // After collect the trainer accepts work again.
  Labeled third = data;
  EXPECT_TRUE(trainer.submit(std::move(third.x), std::move(third.y), small_config()));
  trainer.wait();
  EXPECT_NE(trainer.collect(), nullptr);
  EXPECT_EQ(trainer.completed(), 2u);
}

TEST(AsyncTrainer, CollectWithoutResultReturnsNull) {
  ml::AsyncTrainer trainer(1);
  EXPECT_EQ(trainer.collect(), nullptr);
  EXPECT_FALSE(trainer.result_ready());
  EXPECT_FALSE(trainer.busy());
}

TEST(AsyncTrainer, FailedFitCountsAndFreesTheTrainer) {
  ml::AsyncTrainer trainer(1);
  ml::Dataset empty;  // n_features = 0: Gbdt::fit throws
  std::vector<float> y;
  ASSERT_TRUE(trainer.submit(std::move(empty), std::move(y), small_config()));
  trainer.wait();
  EXPECT_EQ(trainer.failed(), 1u);
  EXPECT_EQ(trainer.collect(), nullptr);
  EXPECT_FALSE(trainer.busy());

  // The trainer survives a bad batch and still fits the next one.
  Labeled good = make_batch(1'000, 6, 33);
  ASSERT_TRUE(trainer.submit(std::move(good.x), std::move(good.y), small_config()));
  trainer.wait();
  EXPECT_NE(trainer.collect(), nullptr);
}

TEST(AsyncTrainer, StatsSnapshotIsConsistentUnderConcurrentReads) {
  // The regression this guards: reading completed()/background_seconds()
  // as separate calls lets the trainer finish a fit between them, pairing
  // the fit count of snapshot N with the wall-clock of snapshot N+1. The
  // one-lock Stats snapshot makes (completed + failed) and the timing
  // fields move together: two snapshots with the same fit count must carry
  // identical timings. A reader thread hammers stats() while fits complete
  // (the TSan lane runs this via the concurrency label).
  ml::AsyncTrainer trainer(1);

  std::atomic<bool> stop{false};
  std::vector<ml::AsyncTrainer::Stats> snapshots;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      snapshots.push_back(trainer.stats());
    }
    snapshots.push_back(trainer.stats());
  });

  for (std::uint64_t round = 0; round < 6; ++round) {
    Labeled batch = make_batch(2'000, 6, 100 + round);
    ASSERT_TRUE(trainer.submit(std::move(batch.x), std::move(batch.y), small_config()));
    trainer.wait();
    EXPECT_NE(trainer.collect(), nullptr);
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  const ml::AsyncTrainer::Stats* prev = nullptr;
  for (const auto& s : snapshots) {
    const std::size_t fits = s.completed + s.failed;
    if (fits == 0) {
      EXPECT_EQ(s.background_seconds, 0.0);
      EXPECT_EQ(s.last_train_seconds, 0.0);
    } else {
      EXPECT_GT(s.background_seconds, 0.0);
      EXPECT_LE(s.last_train_seconds, s.background_seconds);
    }
    if (prev != nullptr) {
      EXPECT_GE(s.completed, prev->completed);
      EXPECT_GE(s.background_seconds, prev->background_seconds);
      if (s.completed + s.failed == prev->completed + prev->failed) {
        EXPECT_EQ(s.background_seconds, prev->background_seconds);
        EXPECT_EQ(s.last_train_seconds, prev->last_train_seconds);
      }
    }
    prev = &s;
  }
  const ml::AsyncTrainer::Stats final = trainer.stats();
  EXPECT_EQ(final.completed, 6u);
  EXPECT_EQ(final.failed, 0u);
}

TEST(AsyncTrainer, DestructorJoinsInFlightTraining) {
  const auto data = make_batch(8'000, 8, 44);
  {
    ml::AsyncTrainer trainer(2);
    Labeled copy = data;
    ASSERT_TRUE(trainer.submit(std::move(copy.x), std::move(copy.y), small_config()));
    // Destroy while (probably) mid-fit: must join cleanly, not crash.
  }
  SUCCEED();
}

// The TSan target: request threads keep predicting on the current model
// while the background trainer fits a replacement, then the swap happens
// and the readers continue on the new model.
TEST(AsyncTrainer, ConcurrentPredictDuringRetrainAndSwap) {
  const auto data = make_batch(6'000, 6, 55);

  auto live = std::make_shared<const ml::CompiledModel>([&] {
    ml::Gbdt m;
    m.fit(data.x, data.y, small_config());
    return m;
  }());

  ml::AsyncTrainer trainer(2);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    // Each reader gets its own reference, copied on this thread before the
    // swap — mirroring LhrCache, where only the request thread ever touches
    // the live pointer and in-flight readers keep the old model alive.
    readers.emplace_back([&, t, model = live] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Score through the compiled forest — the request path's read — and
        // cross-check the node-walk on the same model object.
        const auto row = data.x.row(i % data.x.n_rows());
        const double p = model->forest.score_row(row);
        ASSERT_TRUE(std::isfinite(p));
        ASSERT_EQ(p, model->gbdt.predict(row));
        i += 7;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Labeled retrain = make_batch(6'000, 6, 66);
  ASSERT_TRUE(
      trainer.submit(std::move(retrain.x), std::move(retrain.y), small_config()));
  trainer.wait();
  const auto fresh = trainer.collect();
  ASSERT_NE(fresh, nullptr);
  live = fresh;  // the swap: readers created before still use the old model

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
}

// ------------------------------------------------------- LhrCache async mode

trace::Trace zipf_trace(std::size_t n, std::size_t contents, double alpha,
                        std::uint64_t obj_size, std::uint64_t seed) {
  gen::ZipfSampler zipf(contents, alpha);
  util::Xoshiro256 rng(seed);
  trace::Trace t;
  double time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    time += 0.1;
    t.push_back({time, zipf.sample(rng), obj_size});
  }
  return t;
}

core::LhrConfig async_config() {
  core::LhrConfig cfg;
  cfg.gbdt.num_trees = 10;
  cfg.gbdt.max_depth = 4;
  cfg.max_train_samples = 10'000;
  cfg.min_train_samples = 64;
  cfg.train_synchronously = false;
  return cfg;
}

TEST(LhrCacheAsync, TrainsInBackgroundAndSwapsModelsIn) {
  core::LhrCache lhr(50'000, async_config());
  EXPECT_EQ(lhr.name(), "LHR-Async");

  const auto t = zipf_trace(30'000, 2'000, 0.9, 1'000, 7);
  for (const auto& r : t) lhr.access(r);
  lhr.drain_training();

  EXPECT_GT(lhr.windows_seen(), 1u);
  // Trainings started + windows skipped while busy account for every
  // window-close retrain decision; at least one must have started.
  EXPECT_GT(lhr.trainings(), 0u);
  EXPECT_TRUE(lhr.model_trained());
  EXPECT_GT(lhr.model_swaps(), 0u);
  EXPECT_GT(lhr.background_train_seconds(), 0.0);
  // Foreground stall is snapshot + submit + swap — it must not contain the
  // background fit time.
  EXPECT_LT(lhr.training_seconds(),
            lhr.background_train_seconds() + lhr.trainings() * 0.05 + 0.5);
}

TEST(LhrCacheAsync, DrainTrainingIsIdempotentAndSafeWhenIdle) {
  core::LhrCache lhr(50'000, async_config());
  lhr.drain_training();  // nothing in flight
  const auto t = zipf_trace(5'000, 500, 0.9, 1'000, 8);
  for (const auto& r : t) lhr.access(r);
  lhr.drain_training();
  lhr.drain_training();
  SUCCEED();
}

TEST(LhrCacheAsync, SynchronousModeHasNoAsyncCounters) {
  core::LhrConfig cfg = async_config();
  cfg.train_synchronously = true;
  core::LhrCache lhr(50'000, cfg);
  EXPECT_EQ(lhr.name(), "LHR");

  const auto t = zipf_trace(20'000, 2'000, 0.9, 1'000, 9);
  for (const auto& r : t) lhr.access(r);
  lhr.drain_training();  // no-op in sync mode

  EXPECT_GT(lhr.trainings(), 0u);
  EXPECT_TRUE(lhr.model_trained());
  EXPECT_EQ(lhr.background_train_seconds(), 0.0);
  EXPECT_EQ(lhr.model_swaps(), 0u);
  EXPECT_EQ(lhr.stale_requests(), 0u);
  EXPECT_EQ(lhr.deferred_trainings(), 0u);
  EXPECT_GT(lhr.training_seconds(), 0.0);
}

TEST(LhrCacheAsync, SaveAfterDrainPersistsTheFreshModel) {
  core::LhrCache lhr(50'000, async_config());
  const auto t = zipf_trace(30'000, 2'000, 0.9, 1'000, 10);
  for (const auto& r : t) lhr.access(r);
  lhr.drain_training();
  if (!lhr.model_trained()) GTEST_SKIP() << "trace too thin to train";

  std::stringstream buf;
  lhr.save_model(buf);
  core::LhrCache restored(50'000, async_config());
  restored.load_model(buf);
  EXPECT_TRUE(restored.model_trained());
}

}  // namespace
}  // namespace lhr
