// Concurrent serving-path tests: replay_concurrent equivalence across
// thread counts, AdmissionQueue drain/drop stress, ShardedCache
// set_capacity + counter races. All tests here are meant to run (and stay
// clean) under ThreadSanitizer — they are part of the CI TSan job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gen/cdn_model.hpp"
#include "policies/lru.hpp"
#include "server/admission_queue.hpp"
#include "server/cdn_server.hpp"
#include "server/sharded_cache.hpp"

namespace lhr::server {
namespace {

constexpr std::size_t kShards = 16;

std::unique_ptr<ShardedCache> make_sharded_lru(std::uint64_t capacity) {
  return std::make_unique<ShardedCache>(kShards, capacity, [](std::uint64_t cap) {
    return std::make_unique<policy::Lru>(cap);
  });
}

trace::Trace test_trace() { return gen::make_trace(gen::TraceClass::kCdnA, 20'000, 7); }

ServerConfig serve_config() {
  ServerConfig cfg;
  cfg.ram_bytes = 4 << 20;
  return cfg;
}

void expect_same_aggregates(const ServerReport& base, const ServerReport& got,
                            std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(got.requests, base.requests);
  EXPECT_EQ(got.hits, base.hits);
  EXPECT_EQ(got.bytes_served, base.bytes_served);
  EXPECT_EQ(got.wan_bytes, base.wan_bytes);
  // Quantiles come from exact integer bucket merges, so they match too.
  EXPECT_DOUBLE_EQ(got.p90_latency_ms, base.p90_latency_ms);
  EXPECT_DOUBLE_EQ(got.p99_latency_ms, base.p99_latency_ms);
  ASSERT_EQ(got.window_hit_ratio.size(), base.window_hit_ratio.size());
  for (std::size_t w = 0; w < base.window_hit_ratio.size(); ++w) {
    EXPECT_DOUBLE_EQ(got.window_hit_ratio[w], base.window_hit_ratio[w]) << "window " << w;
  }
}

TEST(ConcurrentReplay, AggregatesMatchSingleThreadedReplay) {
  const auto trace = test_trace();
  const std::uint64_t capacity = 64ULL << 20;

  CdnServer baseline(make_sharded_lru(capacity), serve_config());
  const auto base = baseline.replay(trace, ReplayMode::kNormal, 2'000);
  EXPECT_GT(base.hits, 0u);
  EXPECT_GT(base.wan_bytes, 0u);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    CdnServer server(make_sharded_lru(capacity), serve_config());
    EXPECT_EQ(server.freshness_shard_count(), kShards);
    const auto report = server.replay_concurrent(trace, ReplayMode::kNormal, threads, 2'000);
    EXPECT_EQ(report.replay_threads, std::min<std::size_t>(threads, kShards));
    expect_same_aggregates(base, report, threads);
  }
}

TEST(ConcurrentReplay, DeterministicWithRevalidationActive) {
  // Short TTL + a change probability exercises the per-shard revalidation
  // RNG: coin flips must land identically for every worker count because
  // each shard owns a private deterministic stream.
  auto cfg = serve_config();
  cfg.freshness_ttl_s = 50.0;
  cfg.revalidate_change_prob = 0.3;
  const auto trace = test_trace();
  const std::uint64_t capacity = 64ULL << 20;

  CdnServer baseline(make_sharded_lru(capacity), cfg);
  const auto base = baseline.replay(trace, ReplayMode::kNormal, 2'000);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    CdnServer server(make_sharded_lru(capacity), cfg);
    const auto report = server.replay_concurrent(trace, ReplayMode::kNormal, threads, 2'000);
    expect_same_aggregates(base, report, threads);
  }
}

TEST(ConcurrentReplay, MaxModeMatchesToo) {
  const auto trace = test_trace();
  const std::uint64_t capacity = 32ULL << 20;

  CdnServer baseline(make_sharded_lru(capacity), serve_config());
  const auto base = baseline.replay(trace, ReplayMode::kMax);
  CdnServer server(make_sharded_lru(capacity), serve_config());
  const auto report = server.replay_concurrent(trace, ReplayMode::kMax, 4);
  expect_same_aggregates(base, report, 4);
  EXPECT_GT(report.throughput_gbps, 0.0);
  EXPECT_GT(report.replay_wall_seconds, 0.0);
}

TEST(ConcurrentReplay, ReportObservabilityFields) {
  const auto trace = test_trace();
  CdnServer server(make_sharded_lru(32ULL << 20), serve_config());
  const auto report = server.replay_concurrent(trace, ReplayMode::kNormal, 4);
  EXPECT_EQ(report.requests, trace.size());
  EXPECT_GT(report.peak_metadata_bytes, 0u);
  // Shard ownership means the replay itself never contends the shard locks.
  EXPECT_EQ(report.lock_contentions, 0u);
  EXPECT_GT(report.byte_hit_ratio(), 0.0);
  EXPECT_LT(report.byte_hit_ratio(), 1.0);
}

TEST(ConcurrentReplay, ThreadCountClampedToShardCount) {
  const auto trace = test_trace();
  CdnServer server(make_sharded_lru(32ULL << 20), serve_config());
  const auto report = server.replay_concurrent(trace, ReplayMode::kNormal, 99);
  EXPECT_EQ(report.replay_threads, kShards);
}

TEST(ConcurrentReplay, ThrowsOnUnshardedBackend) {
  CdnServer server(std::make_unique<policy::Lru>(32ULL << 20), serve_config());
  EXPECT_EQ(server.freshness_shard_count(), 1u);
  EXPECT_THROW(server.replay_concurrent(test_trace(), ReplayMode::kNormal, 2),
               std::invalid_argument);
}

TEST(ConcurrentReplay, StatePersistsAcrossCalls) {
  // Second replay of the same trace starts warm: strictly more hits.
  const auto trace = test_trace();
  CdnServer server(make_sharded_lru(64ULL << 20), serve_config());
  const auto cold = server.replay_concurrent(trace, ReplayMode::kNormal, 4);
  const auto warm = server.replay_concurrent(trace, ReplayMode::kNormal, 4);
  EXPECT_GT(warm.hits, cold.hits);
}

// ---------------------------------------------------------- AdmissionQueue

TEST(AdmissionQueueStress, MultiProducerDrainAccountsForEveryRequest) {
  std::atomic<std::uint64_t> admitted{0};
  AdmissionQueue queue([&](const trace::Request&) {
    admitted.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 5'000;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const trace::Request r{static_cast<double>(i), p * kPerProducer + i, 1'000};
        if (queue.enqueue(r)) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.drain();

  EXPECT_EQ(accepted.load() + queue.dropped(), kProducers * kPerProducer);
  EXPECT_EQ(queue.processed(), accepted.load());
  EXPECT_EQ(admitted.load(), queue.processed());
  EXPECT_GT(queue.max_depth_seen(), 0u);
  EXPECT_LE(queue.max_depth_seen(), 4096u);
}

TEST(AdmissionQueueStress, SlowConsumerShedsAndRecordsHighWaterMark) {
  // A tiny queue with a slow admit function must shed load rather than
  // stall producers, and the high-water mark must pin at the cap.
  AdmissionQueue queue(
      [](const trace::Request&) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      },
      /*max_depth=*/8);
  for (std::size_t i = 0; i < 2'000; ++i) {
    queue.enqueue({static_cast<double>(i), i, 1'000});
  }
  queue.drain();
  EXPECT_GT(queue.dropped(), 0u);
  EXPECT_EQ(queue.max_depth_seen(), 8u);
  EXPECT_EQ(queue.processed() + queue.dropped(), 2'000u);
}

// ------------------------------------------------------------ ShardedCache

TEST(ShardedCacheConcurrency, SetCapacityRacesWithAccessors) {
  // TSan regression for the set_capacity data race: readers and writers
  // hammer the cache while capacity is re-split repeatedly.
  auto cache = make_sharded_lru(8ULL << 20);
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t key = t;
      while (!stop.load(std::memory_order_relaxed)) {
        cache->access({0.0, key, 10'000});
        key += 7;
        (void)cache->used_bytes();
        (void)cache->capacity_bytes();
        (void)cache->metadata_bytes();
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    cache->set_capacity((4ULL + static_cast<std::uint64_t>(round % 8)) << 20);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  // Post-quiescence invariants: budgets sum to the stored capacity.
  std::uint64_t shard_sum = 0;
  for (std::size_t s = 0; s < cache->shard_count(); ++s) {
    shard_sum += cache->shard_capacity_bytes(s);
  }
  EXPECT_EQ(shard_sum, cache->capacity_bytes());
  EXPECT_LE(cache->used_bytes(), cache->capacity_bytes());
}

TEST(ShardedCacheConcurrency, ServingCountersSumToRequests) {
  auto cache = make_sharded_lru(8ULL << 20);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        cache->access({0.0, (t * kPerThread + i) % 500, 10'000});
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto total = cache->total_stats();
  EXPECT_EQ(total.accesses, kThreads * kPerThread);
  EXPECT_LE(total.hits, total.accesses);
  EXPECT_GT(total.hits, 0u);
  EXPECT_EQ(total.lock_contentions, cache->lock_contentions());

  std::uint64_t per_shard_sum = 0;
  for (std::size_t s = 0; s < cache->shard_count(); ++s) {
    per_shard_sum += cache->shard_stats(s).accesses;
  }
  EXPECT_EQ(per_shard_sum, total.accesses);
}

}  // namespace
}  // namespace lhr::server
