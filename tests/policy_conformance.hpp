// Cross-policy conformance suite, shared by policies_test (every name the
// factory knows) and server_ext_test (ShardedCache driven through the same
// sim::CachePolicy interface).
//
// Each test binary instantiates PolicyConformance with its own list of
// ConformanceCase values; a case is a label plus a factory closure so the
// suite can exercise policies that are not constructible by name alone.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "gen/cdn_model.hpp"
#include "opt/bounds.hpp"
#include "sim/cache_policy.hpp"
#include "sim/engine.hpp"

namespace lhr::testing {

struct ConformanceCase {
  std::string label;  ///< gtest parameter name ([A-Za-z0-9_] only)
  std::function<std::unique_ptr<sim::CachePolicy>()> make;
};

/// gtest name sanitizer for policy names like "LRU-4" or "Sharded(LRU)x8".
inline std::string conformance_name(
    const ::testing::TestParamInfo<ConformanceCase>& info) {
  std::string name = info.param.label;
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    if (!ok) c = '_';
  }
  return name;
}

class PolicyConformance : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(PolicyConformance, NeverExceedsCapacityAndOnlyHitsSeenKeys) {
  const auto& param = GetParam();
  auto policy = param.make();
  const auto trace = gen::make_trace(gen::TraceClass::kCdnA, 8'000, 99);

  std::unordered_set<trace::Key> seen;
  for (const auto& r : trace) {
    const bool hit = policy->access(r);
    if (hit) {
      EXPECT_TRUE(seen.contains(r.key)) << param.label;
    }
    seen.insert(r.key);
    ASSERT_LE(policy->used_bytes(), policy->capacity_bytes()) << param.label;
  }
}

TEST_P(PolicyConformance, DeterministicAcrossRuns) {
  const auto& param = GetParam();
  const auto trace = gen::make_trace(gen::TraceClass::kWiki, 5'000, 7);
  auto a = param.make();
  auto b = param.make();
  for (const auto& r : trace) {
    ASSERT_EQ(a->access(r), b->access(r)) << param.label;
  }
}

TEST_P(PolicyConformance, DominatedByInfiniteCap) {
  const auto& param = GetParam();
  const auto trace = gen::make_trace(gen::TraceClass::kCdnB, 8'000, 3);
  auto policy = param.make();
  const auto metrics = sim::simulate(*policy, trace);
  const auto inf = opt::infinite_cap(trace.requests());
  EXPECT_LE(metrics.hits, inf.hits) << param.label;
}

}  // namespace lhr::testing
